"""Tests for exact rational arithmetic helpers."""

from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.util.rational import (
    as_rational,
    is_integral,
    rational_gcd,
    rational_lcm,
    rational_str,
    scale_to_integers,
)


class TestAsRational:
    def test_int(self):
        assert as_rational(7) == Fraction(7)

    def test_fraction_passthrough(self):
        f = Fraction(3, 8)
        assert as_rational(f) is f

    def test_string_fraction(self):
        assert as_rational("3/4") == Fraction(3, 4)

    def test_string_decimal(self):
        assert as_rational("0.25") == Fraction(1, 4)

    def test_float_decimal_semantics(self):
        # 0.1 converts via its decimal spelling, not its binary expansion.
        assert as_rational(0.1) == Fraction(1, 10)

    def test_float_64(self):
        assert as_rational(6.4) == Fraction(32, 5)

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            as_rational(True)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            as_rational(float("nan"))

    def test_inf_rejected(self):
        with pytest.raises(ValueError):
            as_rational(float("inf"))

    def test_unsupported_type(self):
        with pytest.raises(TypeError):
            as_rational([1, 2])


class TestGcdLcm:
    def test_gcd_integers(self):
        assert rational_gcd([4, 6]) == 2

    def test_gcd_fractions(self):
        assert rational_gcd([Fraction(1, 4), Fraction(1, 6)]) == Fraction(1, 12)

    def test_lcm_integers(self):
        assert rational_lcm([4, 6]) == 12

    def test_lcm_fractions(self):
        assert rational_lcm([Fraction(1, 4), Fraction(1, 6)]) == Fraction(1, 2)

    def test_gcd_empty(self):
        with pytest.raises(ValueError):
            rational_gcd([])

    def test_lcm_zero(self):
        with pytest.raises(ValueError):
            rational_lcm([0, 1])


class TestScaleToIntegers:
    def test_simple(self):
        assert scale_to_integers([Fraction(1), Fraction(3, 2)]) == [2, 3]

    def test_already_integers_reduced(self):
        assert scale_to_integers([4, 6]) == [2, 3]

    def test_empty(self):
        assert scale_to_integers([]) == []

    def test_single(self):
        assert scale_to_integers([Fraction(5, 3)]) == [1]


class TestMisc:
    def test_is_integral(self):
        assert is_integral(4)
        assert not is_integral(Fraction(1, 3))

    def test_rational_str(self):
        assert rational_str(Fraction(3, 4)) == "3/4"
        assert rational_str(5) == "5"


@given(st.integers(1, 1000), st.integers(1, 1000))
def test_gcd_divides_both(a, b):
    g = rational_gcd([a, b])
    assert (Fraction(a) / g).denominator == 1
    assert (Fraction(b) / g).denominator == 1


@given(
    st.lists(
        st.fractions(min_value=Fraction(1, 50), max_value=50).filter(lambda f: f > 0),
        min_size=1,
        max_size=6,
    )
)
def test_scale_to_integers_preserves_ratios(values):
    ints = scale_to_integers(values)
    assert all(i > 0 for i in ints)
    # All pairwise ratios are preserved exactly.
    for i in range(len(values)):
        for j in range(len(values)):
            assert Fraction(ints[i], ints[j]) == Fraction(values[i]) / Fraction(values[j])
