"""The incrementally maintained steady-state key and its from-scratch oracle.

The detector's ``state_key()`` combines digests pushed by mutation sites
(per-slot buffer digests, stimulus tokens, version-gated function-state
digests) instead of re-walking the world per anchor sample.
``state_key_slow()`` recomputes the identical key from scratch, and the
contract is *equality*, not mere collision-freedom: any write path that
bypasses the digest maintenance must show up as a key mismatch.  The tests
here cross-check that equality at every sample point of real runs, pin the
write-time digest invariant under randomized buffer operation sequences,
and cover the satellite pieces: ``EventQueue.prune_cancelled``, the
``generator-advance`` run warning and the ``runtime.generator-source``
pre-flight rule.
"""

import itertools
import random
from fractions import Fraction

import pytest

import repro.engine.steady_state as steady_state_module
from repro.api import Program
from repro.engine.steady_state import SteadyState
from repro.graph.circular_buffer import CircularBuffer
from repro.dsp.filters import StreamingFIR, design_lowpass
from repro.dsp.mixer import Mixer
from repro.dsp.resample import Decimator, RationalResampler
from repro.runtime.events import EventQueue
from repro.runtime.sources import (
    ConstantStimulus,
    GeneratorStimulus,
    PeriodicStimulus,
    RampStimulus,
    Stimulus,
)
from repro.util.digests import value_digest
from repro.util.runwarnings import warning_code

VALUE_EXACT_APPS = ["quickstart", "pal_decoder", "modal_mute", "modal_two_mode"]


def _constant_signals(app):
    names = list(Program.from_app(app).analyze().compilation.source_ports)
    return {name: ConstantStimulus(1.0) for name in names}


def _install_oracle_crosscheck(monkeypatch):
    """Make every ``state_key()`` call also run the from-scratch oracle and
    assert bit-identity.  Returns the list of per-sample check counts."""
    checks = []

    def checked(self):
        fast = self._state_key(incremental=True)
        slow = self._state_key(incremental=False)
        assert fast == slow, "incremental state key diverged from the oracle"
        checks.append(1)
        return fast

    monkeypatch.setattr(SteadyState, "state_key", checked)
    return checks


class TestOracleEquality:
    @pytest.mark.parametrize("app", VALUE_EXACT_APPS)
    def test_incremental_key_equals_oracle_at_every_sample(self, app, monkeypatch):
        checks = _install_oracle_crosscheck(monkeypatch)
        result = Program.from_app(app).analyze().run(
            Fraction(1, 2), signals=_constant_signals(app)
        )
        steady = result.simulation.engine.steady_state
        assert result.fast_forwarded and steady.value_exact and steady.jumps >= 1
        # The cross-check ran at every anchor sample, spanning the jump.
        assert len(checks) >= len(steady._seen) > 0

    def test_pal_decoder_default_signals_key_equals_oracle(self, monkeypatch):
        # The acceptance app with its real (declared-periodic composite RF)
        # stimulus and every stateful DSP function declaring state_version.
        checks = _install_oracle_crosscheck(monkeypatch)
        result = Program.from_app("pal_decoder").analyze().run(
            Fraction(4), trace="off"
        )
        steady = result.simulation.engine.steady_state
        assert result.fast_forwarded and steady.value_exact and steady.jumps >= 1
        assert len(checks) >= len(steady._seen) > 0


class TestBufferDigests:
    VALUES = [0.0, 1.5, -3.25, "token", (1, 2), None, 7]

    def test_randomized_op_sequences_keep_slot_digests_exact(self):
        rng = random.Random(20260807)
        for _trial in range(25):
            capacity = rng.randint(1, 8)
            initial = [rng.choice(self.VALUES) for _ in range(rng.randint(0, capacity))]
            buffer = CircularBuffer("b", capacity, initial_values=initial)
            buffer.register_producer("p")
            buffer.register_consumer("c")
            buffer.enable_value_digests()
            for _step in range(120):
                roll = rng.random()
                if roll < 0.45 and buffer.can_produce("p", 1):
                    buffer.produce("p", [rng.choice(self.VALUES)], 1)
                elif roll < 0.55 and buffer.can_produce("p", 1):
                    buffer.produce("p", None, 1)  # release-without-write
                elif roll < 0.85 and buffer.can_consume("c", 1):
                    buffer.consume("c", 1)
                else:
                    buffer.rotate_storage(rng.randrange(0, 2 * capacity))
                assert buffer._slot_digests == [
                    value_digest(value) for value in buffer._storage
                ], "slot digests diverged from storage"

    def test_produce_window_fast_path_maintains_digests(self):
        buffer = CircularBuffer("b", 4)
        buffer.register_producer("p")
        buffer.register_consumer("c")
        buffer.enable_value_digests()
        window = buffer.window_of_producer("p")
        buffer.produce_window(window, [1.0, 2.0], 2)
        assert buffer._slot_digests == [value_digest(v) for v in buffer._storage]

    def test_mutations_bump_version_rotation_does_not(self):
        buffer = CircularBuffer("b", 4)
        buffer.register_producer("p")
        buffer.register_consumer("c")
        version = buffer.mutation_version
        buffer.produce("p", [1.0], 1)
        assert buffer.mutation_version > version
        version = buffer.mutation_version
        buffer.consume("c", 1)
        assert buffer.mutation_version > version
        version = buffer.mutation_version
        # The jump's realignment primitive deliberately leaves the version
        # alone: the rotation-anchored fold is invariant under it.
        buffer.rotate_storage(3)
        assert buffer.mutation_version == version

    def test_enable_value_digests_covers_initial_values(self):
        buffer = CircularBuffer("b", 3, initial_values=[5.0, 6.0])
        buffer.enable_value_digests()
        assert buffer._slot_digests == [value_digest(v) for v in buffer._storage]


class TestPruneCancelled:
    def test_prune_drops_every_cancelled_entry_and_keeps_order(self):
        queue = EventQueue()
        events = [
            queue.schedule(Fraction(i, 10), lambda: None, label=f"e{i}")
            for i in range(10)
        ]
        for event in events[::2]:
            queue.cancel(event)
        assert queue.cancelled_pending == 5
        queue.prune_cancelled()
        assert queue.cancelled_pending == 0
        assert all(not event.cancelled for event in queue._heap)
        assert sorted(event.label for event in queue._heap) == [
            f"e{i}" for i in range(1, 10, 2)
        ]
        # Heap invariant intact: events drain in time order.
        import heapq

        times = []
        while queue._heap:
            times.append(heapq.heappop(queue._heap).time)
        assert times == sorted(times) == [Fraction(i, 10) for i in range(1, 10, 2)]

    def test_prune_without_debt_is_a_no_op(self):
        queue = EventQueue()
        queue.schedule(Fraction(1, 10), lambda: None)
        heap_before = list(queue._heap)
        queue.prune_cancelled()
        assert queue._heap == heap_before


class TestStimulusTokens:
    def test_closed_form_stimuli_declare_o1_advance(self):
        assert ConstantStimulus(1.0).advance_linear is False
        assert PeriodicStimulus([1, 2]).advance_linear is False
        assert RampStimulus(0, 1).advance_linear is False
        assert Stimulus.advance_linear is True
        assert GeneratorStimulus(lambda: itertools.count()).advance_linear is True

    def test_state_token_tracks_state(self):
        for stimulus in (
            ConstantStimulus(2.5),
            PeriodicStimulus([1, 2, 3]),
            RampStimulus(0.0, 1.0),
            GeneratorStimulus(lambda: itertools.count()),
        ):
            assert stimulus.state_token() == stimulus.state()
            stimulus.next()
            assert stimulus.state_token() == stimulus.state()


class TestFunctionStateVersions:
    def _assert_version_moves(self, obj, mutate):
        before_version = obj.state_version()
        before_state = obj.get_state()
        assert obj.state_version() == before_version  # reading is free
        mutate()
        assert obj.state_version() != before_version or obj.get_state() == before_state

    def test_streaming_fir_version_moves_with_state(self):
        fir = StreamingFIR(design_lowpass(0.2, 7))
        self._assert_version_moves(fir, lambda: fir.process([1.0, 2.0]))
        self._assert_version_moves(fir, fir.reset)
        state = fir.get_state()
        self._assert_version_moves(fir, lambda: fir.set_state(state))

    def test_mixer_token_is_its_position(self):
        mixer = Mixer(0.25)
        assert mixer.state_version() == mixer.get_state()
        mixer.process([1.0])
        assert mixer.state_version() == mixer.get_state()

    def test_resampler_and_decimator_versions_move_with_state(self):
        resampler = RationalResampler(2, 3)
        self._assert_version_moves(resampler, lambda: resampler.process([1.0, 2.0, 3.0]))
        decimator = Decimator(4)
        self._assert_version_moves(decimator, lambda: decimator.process([1.0] * 4))


class TestSamplingCost:
    def test_sampling_does_not_redigest_unchanged_state(self, monkeypatch):
        # Structural regression guard (no wall clocks): the number of value
        # digests computed *inside the key fold* must scale with what changed
        # per sample (a few in-flight values and function states), not with
        # samples x total buffer capacity as a from-scratch rebuild would.
        calls = {"n": 0}
        real = steady_state_module.value_digest

        def counting(value):
            calls["n"] += 1
            return real(value)

        monkeypatch.setattr(steady_state_module, "value_digest", counting)
        result = Program.from_app("pal_decoder").analyze().run(Fraction(1), trace="off")
        steady = result.simulation.engine.steady_state
        assert steady is not None and steady.value_exact
        samples = len(steady._seen)
        total_capacity = sum(buffer.capacity for buffer in steady._buffers)
        assert samples > 1000
        assert total_capacity > 10
        # From-scratch would pay >= samples * total_capacity slot digests on
        # top of the per-sample tail; the incremental fold stays within a
        # small constant per sample.
        assert calls["n"] <= samples * 16
        assert calls["n"] < samples * total_capacity / 4


class _PeriodicGenerator(GeneratorStimulus):
    """A generator-backed stream that *declares* an exact value period, so
    the value-exact detector qualifies it -- but whose ``advance()`` still
    replays draws one by one (``advance_linear`` stays True)."""

    value_periodic = True

    def __init__(self, values):
        self._values = list(values)
        super().__init__(lambda: itertools.cycle(self._values))
        self.period = len(self._values)

    def state(self):
        return self.draws % self.period

    def fresh(self):
        return _PeriodicGenerator(self._values)


class TestGeneratorAdvanceWarning:
    def test_jump_through_generator_stimulus_warns_past_threshold(self, monkeypatch):
        monkeypatch.setattr(steady_state_module, "GENERATOR_ADVANCE_THRESHOLD", 0)
        result = Program.from_app("quickstart").analyze().run(
            Fraction(1, 2), signals={"samples": _PeriodicGenerator([0.5, -0.25])}
        )
        steady = result.simulation.engine.steady_state
        assert result.fast_forwarded and steady.value_exact and steady.jumps >= 1
        codes = [warning_code(w) for w in result.warnings]
        assert "generator-advance" in codes

    def test_no_warning_below_threshold_or_for_closed_form(self):
        generator = Program.from_app("quickstart").analyze().run(
            Fraction(1, 2), signals={"samples": _PeriodicGenerator([0.5, -0.25])}
        )
        assert generator.fast_forwarded
        constant = Program.from_app("quickstart").analyze().run(
            Fraction(1, 2), signals={"samples": ConstantStimulus(1.0)}
        )
        assert constant.fast_forwarded
        for result in (generator, constant):
            assert "generator-advance" not in [
                warning_code(w) for w in result.warnings
            ]


class TestGeneratorSourceRule:
    def test_rule_flags_generator_backed_stimuli_only(self):
        flagged = Program.from_app(
            "quickstart", signal=GeneratorStimulus(lambda: itertools.count())
        ).check(select=["runtime.generator-source"])
        assert [v.rule_id for v in flagged.violations] == ["runtime.generator-source"]
        violation = flagged.violations[0]
        assert violation.severity == "info"
        assert violation.extra.get("warning_code") == "generator-advance"

        closed_form = Program.from_app(
            "quickstart", signal=ConstantStimulus(1.0)
        ).check(select=["runtime.generator-source"])
        assert closed_form.violations == []

        default = Program.from_app("quickstart").check(
            select=["runtime.generator-source"]
        )
        assert default.violations == []  # the counting default is a ramp
