"""Semantics of the declared stimulus model (:mod:`repro.runtime.sources`).

The fast-forwarder's value-exactness proof rests on two laws every
:class:`~repro.runtime.sources.Stimulus` must obey:

* ``advance(k)`` leaves the stream in exactly the state ``k`` sequential
  ``next()`` calls would -- bit-identical values afterwards, even for float
  arithmetic (ramps compute ``start + n * step`` by multiplication), and
* ``state()`` / ``restore()`` round-trip the stream position through a
  serialisable value, mid-stream, with no value drift.

Both are property-tested here over randomized positions and seeds, together
with the :func:`~repro.runtime.sources.as_stimulus` resolution table the
drivers rely on.
"""

import itertools
import pickle
import random
import warnings

import pytest

from repro.api.program import FixedSignals
from repro.runtime.sources import (
    ConstantStimulus,
    GeneratorStimulus,
    PeriodicStimulus,
    RampStimulus,
    Stimulus,
    as_stimulus,
)


def make_stimuli():
    """One representative of every stimulus class (fresh instances)."""
    return [
        ConstantStimulus(7.25),
        PeriodicStimulus([3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0]),
        RampStimulus(0, 1),
        RampStimulus(0.1, 0.3),  # float step: multiplication, not summation
        GeneratorStimulus(lambda: (i * i for i in itertools.count())),
    ]


STIMULUS_IDS = ["constant", "periodic", "ramp-int", "ramp-float", "generator"]


def drain(stimulus, n):
    return [stimulus.next() for _ in range(n)]


class TestAdvanceLaw:
    @pytest.mark.parametrize("make", range(len(STIMULUS_IDS)), ids=STIMULUS_IDS)
    def test_advance_equals_sequential_draws(self, make):
        rng = random.Random(make * 7919 + 17)
        for _ in range(25):
            k = rng.randrange(0, 200)
            a, b = make_stimuli()[make], make_stimuli()[make]
            prefix = rng.randrange(0, 30)
            drain(a, prefix)
            drain(b, prefix)
            a.advance(k)
            drained = drain(b, k)
            assert len(drained) == k
            # advance(k) then next() == the (k+1)-th sequential next()
            assert a.next() == b.next()
            assert drain(a, 5) == drain(b, 5)

    def test_ramp_float_advance_is_bit_identical(self):
        # start + n * step by multiplication: no accumulated float error,
        # so a jump of a million draws is bit-identical to stepping.
        jumped = RampStimulus(0.1, 0.3)
        jumped.advance(1_000_000)
        stepped = RampStimulus(0.1, 0.3)
        stepped.restore(1_000_000)
        assert jumped.next() == stepped.next() == 0.1 + 1_000_000 * 0.3

    def test_legacy_count_reproduced(self):
        ramp = RampStimulus(0, 1)
        count = itertools.count()
        assert drain(ramp, 50) == list(itertools.islice(count, 50))


class TestStateRestore:
    @pytest.mark.parametrize("make", range(len(STIMULUS_IDS)), ids=STIMULUS_IDS)
    def test_state_restore_round_trips_mid_stream(self, make):
        rng = random.Random(make * 104729 + 3)
        for _ in range(15):
            stimulus = make_stimuli()[make]
            drain(stimulus, rng.randrange(0, 120))
            saved = stimulus.state()
            expected = drain(stimulus, 10)
            stimulus.restore(saved)
            assert drain(stimulus, 10) == expected

    def test_restore_onto_fresh_instance(self):
        a = make_stimuli()[1]
        drain(a, 11)
        b = make_stimuli()[1]
        b.restore(a.state())
        assert drain(a, 10) == drain(b, 10)

    def test_generator_factory_restore_rederives_position(self):
        stimulus = GeneratorStimulus(lambda: iter(range(1000)))
        drain(stimulus, 42)
        saved = stimulus.state()
        assert saved == 42
        stimulus.restore(saved)
        assert stimulus.next() == 42

    def test_bare_iterator_state_raises(self):
        stimulus = GeneratorStimulus(iter(range(10)))
        with pytest.raises(ValueError, match="bare iterator"):
            stimulus.state()
        with pytest.raises(ValueError, match="bare iterator"):
            stimulus.restore(0)
        # draining still works: the legacy semantics are preserved
        assert drain(stimulus, 3) == [0, 1, 2]


class TestFreshAndPeriodicity:
    def test_fresh_is_rewound_and_independent(self):
        for stimulus, ident in zip(make_stimuli(), STIMULUS_IDS):
            expected = drain(stimulus, 20)
            clone = stimulus.fresh()
            assert drain(clone, 20) == expected, ident

    def test_fresh_of_bare_iterator_shares_stream(self):
        # Bare iterators cannot rewind: fresh() keeps the legacy
        # shared-iterator semantics instead of silently restarting.
        stimulus = GeneratorStimulus(iter(range(10)))
        assert stimulus.fresh() is stimulus

    def test_value_periodic_declarations(self):
        assert ConstantStimulus(1).value_periodic
        assert PeriodicStimulus([1, 2]).value_periodic
        assert not RampStimulus().value_periodic
        assert not GeneratorStimulus(lambda: iter(range(3))).value_periodic

    def test_finite_stream_raises_stop_iteration(self):
        stimulus = GeneratorStimulus(lambda: iter([1, 2]))
        assert drain(stimulus, 2) == [1, 2]
        with pytest.raises(StopIteration):
            stimulus.next()


class TestAsStimulusResolution:
    def test_none_is_counting_ramp(self):
        stimulus = as_stimulus(None)
        assert isinstance(stimulus, RampStimulus)
        assert drain(stimulus, 4) == [0, 1, 2, 3]

    def test_stimulus_passes_through(self):
        stimulus = ConstantStimulus(2)
        assert as_stimulus(stimulus) is stimulus

    def test_factory_keeps_state_protocol(self):
        stimulus = as_stimulus(lambda: iter(range(100)))
        assert isinstance(stimulus, GeneratorStimulus)
        assert not stimulus.auto_wrapped
        drain(stimulus, 5)
        assert stimulus.state() == 5  # the factory was kept

    def test_factory_returning_stimulus_unwraps(self):
        inner = PeriodicStimulus([1, 2, 3])
        assert as_stimulus(lambda: inner) is inner

    def test_list_wraps_silently(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            stimulus = as_stimulus([1.0, 2.0])
        assert isinstance(stimulus, GeneratorStimulus)
        assert not stimulus.auto_wrapped

    def test_bare_iterator_warns_and_marks_auto_wrapped(self):
        with pytest.warns(DeprecationWarning):
            stimulus = as_stimulus(iter([1.0, 2.0]))
        assert isinstance(stimulus, GeneratorStimulus)
        assert stimulus.auto_wrapped


class TestFixedSignalsRoundTrip:
    def test_pickle_round_trip_preserves_stimuli(self):
        fixed = FixedSignals(
            {"a": PeriodicStimulus([1.0, 2.0]), "b": RampStimulus(0, 2), "c": [5, 6]}
        )
        clone = pickle.loads(pickle.dumps(fixed))
        signals = clone()
        assert isinstance(signals["a"], PeriodicStimulus)
        assert drain(signals["a"], 3) == [1.0, 2.0, 1.0]
        assert isinstance(signals["b"], RampStimulus)
        assert signals["c"] == [5, 6]

    def test_call_returns_fresh_copies(self):
        fixed = FixedSignals({"a": PeriodicStimulus([1.0, 2.0, 3.0])})
        first = fixed()["a"]
        drain(first, 2)  # mutate the first run's copy
        second = fixed()["a"]
        assert drain(second, 3) == [1.0, 2.0, 3.0]
