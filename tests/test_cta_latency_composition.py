"""Tests for latency constraints, composition, hiding and DOT export."""

from fractions import Fraction

import pytest

from repro.cta import (
    BufferParameter,
    CTAModel,
    Component,
    LatencyConstraint,
    add_latency_constraint,
    check_consistency,
    compose,
    end_to_end_latency,
    flatten,
    hide,
    to_dot,
    verify_latency,
)


def source_pipeline_sink(latency_bound=None):
    """source (1 kHz) -> worker -> sink (1 kHz) with sized buffers."""
    model = CTAModel("app")
    source = model.new_component("source", kind="source")
    worker = model.new_component("worker", kind="task")
    sink = model.new_component("sink", kind="sink")
    rate = Fraction(1000)
    source.add_port("in", fixed_rate=rate)
    source.add_port("out", fixed_rate=rate)
    source.connect(source.port_ref("in"), source.port_ref("out"), epsilon=Fraction(1) / rate)
    sink.add_port("in", fixed_rate=rate)
    sink.add_port("out", fixed_rate=rate)
    sink.connect(sink.port_ref("in"), sink.port_ref("out"), epsilon=Fraction(1) / rate)
    worker.add_port("in")
    worker.add_port("out")
    worker.connect(worker.port_ref("in"), worker.port_ref("out"), epsilon=Fraction(1, 4000), purpose="firing")

    b_in = BufferParameter("b_in", value=4)
    b_out = BufferParameter("b_out", value=4)
    model.connect(source.port_ref("out"), worker.port_ref("in"), purpose="buffer-data")
    model.connect(worker.port_ref("out"), source.port_ref("in"), buffer=b_in, purpose="buffer")
    model.connect(worker.port_ref("out"), sink.port_ref("in"), purpose="buffer-data")
    model.connect(sink.port_ref("out"), worker.port_ref("in"), buffer=b_out, purpose="buffer")

    constraint = None
    if latency_bound is not None:
        constraint = LatencyConstraint(
            subject=source.port_ref("out"),
            reference=sink.port_ref("in"),
            bound=latency_bound,
            kind="before",
        )
        add_latency_constraint(model, constraint)
    return model, source, sink, constraint


class TestLatency:
    def test_satisfiable_bound(self):
        model, source, sink, constraint = source_pipeline_sink(Fraction(5, 1000))
        result = check_consistency(model)
        assert result.consistent
        checks = verify_latency(result, [constraint])
        assert checks[0].satisfied

    def test_unsatisfiable_bound_makes_model_inconsistent(self):
        # The sink cannot start earlier than the worker's processing delay
        # after the source; a 0.1 ms bound is tighter than the 0.25 ms firing
        # duration of the worker, so the encoded constraint creates a positive
        # cycle.
        model, *_ = source_pipeline_sink(Fraction(1, 10000))
        result = check_consistency(model)
        assert not result.consistent

    def test_end_to_end_latency_positive(self):
        model, source, sink, constraint = source_pipeline_sink(Fraction(5, 1000))
        result = check_consistency(model)
        latency = end_to_end_latency(result, source.port_ref("out"), sink.port_ref("in"))
        assert latency is not None
        assert 0 <= latency <= Fraction(5, 1000)

    def test_after_constraint(self):
        model, source, sink, _ = source_pipeline_sink()
        constraint = LatencyConstraint(
            subject=sink.port_ref("in"),
            reference=source.port_ref("out"),
            bound=Fraction(1, 10000),
            kind="after",
        )
        add_latency_constraint(model, constraint)
        result = check_consistency(model)
        assert result.consistent
        checks = verify_latency(result, [constraint])
        assert checks[0].satisfied

    def test_invalid_kind_rejected(self):
        model, source, sink, _ = source_pipeline_sink()
        with pytest.raises(ValueError):
            LatencyConstraint(source.port_ref("out"), sink.port_ref("in"), Fraction(1), "soon")

    def test_missing_offsets_reported(self):
        model, source, sink, _ = source_pipeline_sink()
        constraint = LatencyConstraint(
            subject=sink.port_ref("in"),
            reference=source.port_ref("out"),
            bound=0,
            kind="after",
        )
        from repro.cta.consistency import ConsistencyResult
        from repro.cta.rates import compute_rate_structure

        empty = ConsistencyResult(False, compute_rate_structure(model))
        checks = verify_latency(empty, [constraint])
        assert not checks[0].satisfied


class TestComposition:
    def test_compose_creates_parent(self):
        a = Component("a")
        b = Component("b")
        parent = compose("parent", [a, b])
        assert set(parent.children) == {"a", "b"}
        assert a.parent is parent

    def test_flatten_preserves_counts(self):
        model, *_ = source_pipeline_sink(Fraction(5, 1000))
        flat = flatten(model)
        assert len(flat.all_ports()) == len(model.all_ports())
        assert len(flat.all_connections()) == len(model.all_connections())
        assert all(len(ref.component) == 1 for ref in flat.all_ports())

    def test_flatten_analysis_equivalent(self):
        model, *_ = source_pipeline_sink(Fraction(5, 1000))
        flat = flatten(model)
        assert check_consistency(flat).consistent == check_consistency(model).consistent

    def test_hide_exposes_selected_ports(self):
        model, source, sink, _ = source_pipeline_sink()
        iface = hide(model, [source.port_ref("out"), sink.port_ref("in")], name="bb")
        assert len(iface.ports) == 2
        assert iface.kind == "black-box"

    def test_hide_preserves_path_delay(self):
        model, source, sink, _ = source_pipeline_sink()
        iface = hide(model, [source.port_ref("out"), sink.port_ref("in")])
        # There must be a constraint from the source-side port to the
        # sink-side port whose delay at the operating rate is at least the
        # worker's firing duration.
        rate = Fraction(1000)
        delays = [
            connection.delay(rate)
            for connection in iface.all_connections()
            if connection.src.port.startswith("out") and connection.dst.port.startswith("in")
        ]
        assert delays and max(delays) >= Fraction(1, 4000)


class TestDot:
    def test_dot_output_structure(self):
        model, *_ = source_pipeline_sink(Fraction(5, 1000))
        dot = to_dot(model)
        assert dot.startswith("digraph")
        assert "cluster" in dot
        assert "->" in dot
        # latency constraints are rendered dashed
        assert "style=dashed" in dot
