"""Tests for the PAL decoder case study (Sec. VI, Figs. 11 and 12)."""

from fractions import Fraction

import pytest

from repro.apps.pal_decoder import (
    AUDIO_DECIMATION,
    AUDIO_FINAL_DECIMATION,
    AUDIO_RATE_HZ,
    RF_RATE_HZ,
    VIDEO_DOWN,
    VIDEO_RATE_HZ,
    VIDEO_UP,
    PalDecoderApp,
    pal_source_text,
)
from repro.cta import compute_rate_structure
from repro.dsp import dominant_frequency
from repro.lang import parse_program


class TestProgramText:
    def test_rates_of_the_paper(self):
        text = pal_source_text(1)
        assert "@ 6400000 Hz" in text
        assert "@ 4000000 Hz" in text
        assert "@ 32000 Hz" in text
        assert "si:25" in text
        assert "si:16" in text and "so:10" in text

    def test_scale_must_divide(self):
        with pytest.raises(ValueError):
            pal_source_text(7)

    def test_rate_ratios_are_scale_invariant(self):
        assert RF_RATE_HZ // AUDIO_DECIMATION // AUDIO_FINAL_DECIMATION == AUDIO_RATE_HZ
        assert RF_RATE_HZ * VIDEO_UP // VIDEO_DOWN == VIDEO_RATE_HZ

    def test_program_parses(self):
        program = parse_program(pal_source_text(1000))
        assert {m.name for m in program.modules} == {"SRC_A", "SRC_V", "Splitter", "main"}


class TestDerivedModel:
    def test_structure(self, pal_compiled):
        model = pal_compiled.model
        splitter = model.child("main").child("Splitter")
        assert set(splitter.children) >= {"Mix_A", "SRC_A", "LPF_V", "SRC_V"}
        kinds = {c.kind for c in model.walk()}
        assert {"source", "sink", "black-box", "module", "while-loop", "stream-access"} <= kinds

    def test_rate_conversion_ratios(self, pal_compiled):
        """The gamma factors of Fig. 12: 1/25 (SRC_A), 10/16 (SRC_V), 1/8 (Audio)."""
        result = pal_compiled
        structure = compute_rate_structure(result.model)
        rf = structure.relative_rate(result.source_ports["rf"])
        screen = structure.relative_rate(result.sink_ports["screen"])
        speakers = structure.relative_rate(result.sink_ports["speakers"])
        assert screen / rf == Fraction(VIDEO_UP, VIDEO_DOWN)
        assert speakers / rf == Fraction(1, AUDIO_DECIMATION * AUDIO_FINAL_DECIMATION)

    def test_consistency_and_absolute_rates(self, pal_app, pal_compiled):
        consistency = pal_compiled.check_consistency(assume_infinite_unsized=True)
        assert consistency.consistent
        assert consistency.port_rates[pal_compiled.source_ports["rf"]] == pal_app.rf_rate
        assert consistency.port_rates[pal_compiled.sink_ports["screen"]] == pal_app.video_rate
        assert consistency.port_rates[pal_compiled.sink_ports["speakers"]] == pal_app.audio_rate

    def test_inconsistent_when_sink_rate_wrong(self, pal_app):
        """Declaring a 3 MHz screen makes the fixed rates conflict."""
        text = pal_app.source_text().replace("@ 4000 Hz", "@ 3000 Hz")
        from repro.core import compile_program

        result = compile_program(
            text,
            function_wcets=pal_app.function_wcets(),
            black_boxes=pal_app.black_boxes(),
        )
        assert not result.check_consistency(assume_infinite_unsized=True).consistent

    def test_buffer_sizing(self, pal_sized):
        result, sizing = pal_sized
        assert sizing.consistency.consistent
        capacities = sizing.capacities
        # The SRC_A distribution buffer must hold at least one 25-sample block.
        assert capacities["SRC_A/loop0/si.access0"] >= AUDIO_DECIMATION
        assert capacities["SRC_V/loop0/si.access0"] >= VIDEO_DOWN
        assert capacities["SRC_V/loop0/so.access0"] >= VIDEO_UP
        assert all(value >= 1 for value in capacities.values())

    def test_audio_video_sync_constraint(self, pal_sized):
        result, sizing = pal_sized
        checks = result.verify_latency(sizing.consistency)
        assert len(checks) == 2
        assert all(check.satisfied for check in checks)
        # The two constraints force equal start times.
        screen = sizing.consistency.offsets[result.sink_ports["screen"]]
        speakers = sizing.consistency.offsets[result.sink_ports["speakers"]]
        assert screen == speakers

    def test_report_renders(self, pal_compiled):
        text = pal_compiled.report()
        assert "CTA model" in text
        assert "source rf" in text


class TestPalSimulation:
    def test_decoder_end_to_end(self, pal_app, pal_sized):
        result, sizing = pal_sized
        simulation, trace = pal_app.simulate(Fraction(3, 2), result=result, sizing=sizing)

        # Real-time behaviour: no deadline misses with the analysed capacities.
        assert trace.deadline_miss_count() == 0
        assert trace.measured_rate("screen") == pal_app.video_rate
        assert trace.measured_rate("speakers") == pal_app.audio_rate

        # Buffer occupancies stay within the analysed capacities.
        for name, mark in trace.buffer_high_water.items():
            assert mark <= simulation.buffers[name].capacity

        # Functional behaviour: the audio tone is recovered at the speakers
        # and the video band tone appears at the screen.
        audio = simulation.sinks["speakers"].consumed
        video = simulation.sinks["screen"].consumed
        assert len(audio) >= 32
        assert len(video) >= 1000
        expected_audio = pal_app.signal.audio_tone * AUDIO_DECIMATION * AUDIO_FINAL_DECIMATION
        assert dominant_frequency(audio[8:]) == pytest.approx(expected_audio, rel=0.15)
        expected_video = pal_app.signal.video_tones[0] * VIDEO_DOWN / VIDEO_UP
        assert dominant_frequency(video[64:]) == pytest.approx(expected_video, rel=0.15)

    def test_mute_mode_activates_on_weak_signal(self, pal_sized):
        result, sizing = pal_sized
        app = PalDecoderApp(scale=1000, mute_threshold=10.0)  # absurdly high threshold
        simulation, trace = app.simulate(Fraction(1, 2), result=result, sizing=sizing)
        audio = simulation.sinks["speakers"].consumed
        assert audio and all(value == 0.0 for value in audio)
