"""Tests for the repro.api facade: Program -> Analysis -> RunResult, the app
catalogue, the Sweep subsystem (thread and process backends, ProgramSpec
shipping) and the deprecated pre-facade aliases."""

import os
import pickle
from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.api import (
    Analysis,
    Program,
    ProgramSpec,
    Sweep,
    SweepConfigError,
    available_apps,
    build_app,
)
from repro.api.sweep import SweepReport, SweepResult
from repro.apps.producer_consumer import (
    QUICKSTART_OIL_SOURCE,
    quickstart_registry,
    quickstart_wcets,
)
from repro.core.compiler import compile_program
from repro.engine import BoundedProcessors, SelfTimedUnbounded


def quickstart_facade(**params):
    return Program.from_app("quickstart", **params)


def _square_point(n):
    """Module-level sweep runner: picklable by reference for process tests."""
    return {"value": n * n}


def _crash_in_worker(n):
    """Dies hard in a worker process, succeeds when re-run in the parent.

    ``multiprocessing.parent_process()`` is None exactly in the main
    process, under both the fork and spawn start methods -- a pid sentinel
    captured at import time would misidentify spawn workers, which re-import
    this module.
    """
    import multiprocessing

    if multiprocessing.parent_process() is not None:
        os._exit(13)
    return {"value": n}


class TestProgramFacade:
    def test_catalogue_lists_all_apps(self):
        names = [spec.name for spec in available_apps()]
        assert names == [
            "quickstart",
            "pal_decoder",
            "rate_converter",
            "modal_mute",
            "modal_two_mode",
        ]

    def test_unknown_app_and_unknown_param(self):
        with pytest.raises(KeyError, match="unknown app"):
            Program.from_app("no_such_app")
        with pytest.raises(TypeError, match="does not accept"):
            Program.from_app("quickstart", bogus=1)

    def test_aliases_resolve(self):
        assert build_app("producer_consumer").name == "quickstart"
        assert build_app("fig2").name == "rate_converter"

    def test_compile_and_analysis_are_cached(self):
        program = quickstart_facade()
        assert program.compile() is program.compile()
        assert program.analyze() is program.analyze()

    def test_from_source_equals_from_app(self):
        source = Program.from_source(
            QUICKSTART_OIL_SOURCE,
            function_wcets=quickstart_wcets(),
            registry=quickstart_registry,
            signals=lambda: {"samples": [float(i) for i in range(2000)]},
        )
        by_app = quickstart_facade()
        assert source.analyze().capacities == by_app.analyze().capacities

    @pytest.mark.parametrize(
        "app,params,duration",
        [
            ("quickstart", {}, Fraction(1, 10)),
            ("pal_decoder", {"scale": 1000}, Fraction(1, 50)),
            ("rate_converter", {}, Fraction(1, 100)),
            ("modal_mute", {}, Fraction(1, 20)),
            ("modal_two_mode", {}, Fraction(1, 50)),
        ],
    )
    def test_every_app_analyzes_and_runs(self, app, params, duration):
        analysis = Program.from_app(app, **params).analyze()
        assert analysis.consistent
        assert analysis.latency_ok
        assert all(value >= 1 for value in analysis.capacities.values())
        run = analysis.run(duration)
        assert run.completed_firings > 0
        assert run.occupancy_ok
        assert run.deadline_misses == 0


class TestAnalysisParity:
    """The facade must reproduce the pre-facade helper numbers identically."""

    def test_quickstart_parity_with_direct_pipeline(self):
        direct = compile_program(QUICKSTART_OIL_SOURCE, function_wcets=quickstart_wcets())
        direct_consistency = direct.check_consistency(assume_infinite_unsized=True)
        direct_sizing = direct.size_buffers()
        direct_checks = direct.verify_latency(direct_sizing.consistency)

        analysis = quickstart_facade().analyze()
        assert analysis.consistent == direct_consistency.consistent
        assert analysis.capacities == direct_sizing.capacities
        assert analysis.total_capacity == direct_sizing.total_capacity
        assert [c.satisfied for c in analysis.latency] == [
            c.satisfied for c in direct_checks
        ]
        assert analysis.source_rates == {"samples": Fraction(2000)}
        assert analysis.sink_rates == {"averages": Fraction(1000)}

    def test_pal_parity_with_session_fixture(self, pal_sized):
        result, sizing = pal_sized
        analysis = Program.from_app("pal_decoder", scale=1000).analyze()
        assert analysis.capacities == sizing.capacities
        assert analysis.consistent
        assert analysis.latency_ok

    def test_quickstart_run_reproduces_simulation_numbers(self):
        run = quickstart_facade().analyze().run(Fraction(1, 5))
        assert run.deadline_misses == 0
        assert run.sink("averages")[:4] == [0.5, 2.5, 4.5, 6.5]
        assert run.measured_rates["averages"] == 1000
        assert run.measured_rates["samples"] == 2000
        assert run.occupancy_ok
        metrics = run.metrics()
        assert metrics["deadline_misses"] == 0
        assert metrics["sink_count[averages]"] == len(run.sink("averages"))
        assert "deadline violations: 0" in run.summary()

    def test_analysis_report_mentions_everything(self):
        report = quickstart_facade().analyze().report()
        assert "consistency" in report
        assert "source samples: 2000 Hz" in report
        assert "buffer sizing" in report
        assert "latency" in report


class TestProgramSpec:
    """The picklable rebuild recipes behind the process sweep backend."""

    APPS = ["quickstart", "pal_decoder", "rate_converter", "modal_mute", "modal_two_mode"]
    DURATIONS = {
        "quickstart": Fraction(1, 100),
        "pal_decoder": Fraction(1, 50),
        "rate_converter": Fraction(1, 100),
        "modal_mute": Fraction(1, 50),
        "modal_two_mode": Fraction(1, 50),
    }

    @pytest.mark.parametrize("app", APPS)
    @pytest.mark.parametrize("time_base", ["ticks", "fraction"])
    def test_app_spec_round_trips_through_pickle(self, app, time_base):
        spec = ProgramSpec.from_app(app, time_base=time_base)
        revived = pickle.loads(pickle.dumps(spec))
        assert revived == spec
        program = revived.build()
        assert program.app == app
        duration = self.DURATIONS[app]
        run = program.analyze().run(duration)
        assert run.time_base == time_base
        original = Program.from_app(app)
        original.time_base = time_base
        assert run.metrics() == original.analyze().run(duration).metrics()

    def test_from_program_replays_exact_builder_kwargs(self):
        # ``program.params`` echoes derived parameters and may omit builder
        # kwargs (pal_decoder does not echo ``signal``); the spec must
        # replay the *invocation*, not the echo.
        program = Program.from_app("pal_decoder", scale=1000, utilisation=0.3)
        assert program.app == "pal_decoder"
        assert program.app_params == {"scale": 1000, "utilisation": 0.3}
        spec = program.spec()
        assert dict(spec.params) == {"scale": 1000, "utilisation": 0.3}
        rebuilt = pickle.loads(spec.ensure_picklable()).build()
        assert rebuilt.analyze().capacities == program.analyze().capacities

    def test_source_program_spec_round_trips(self):
        program = Program.from_source(
            QUICKSTART_OIL_SOURCE,
            name="inline-quickstart",
            function_wcets=quickstart_wcets(),
            registry=quickstart_registry,  # module-level: picklable by reference
            signals={"samples": [float(i) for i in range(200)]},
        )
        revived = pickle.loads(program.spec().ensure_picklable())
        rebuilt = revived.build()
        assert rebuilt.name == "inline-quickstart"
        assert rebuilt.analyze().capacities == program.analyze().capacities
        duration = Fraction(1, 100)
        assert (
            rebuilt.analyze().run(duration).metrics()
            == program.analyze().run(duration).metrics()
        )

    def test_unknown_app_or_param_fails_in_parent(self):
        with pytest.raises(KeyError, match="unknown app"):
            ProgramSpec.from_app("no_such_app")
        with pytest.raises(TypeError, match="does not accept"):
            ProgramSpec.from_app("quickstart", bogus=1)

    def test_precompiled_program_has_no_spec(self, quickstart_sized):
        result, sizing = quickstart_sized
        analysis = Analysis.from_parts(result, sizing)
        with pytest.raises(SweepConfigError, match="pre-computed"):
            analysis.program.spec()

    def test_unpicklable_spec_names_itself(self):
        program = Program.from_source(
            QUICKSTART_OIL_SOURCE,
            name="closure-signals",
            function_wcets=quickstart_wcets(),
            registry=quickstart_registry,
            signals=lambda: {"samples": [0.0] * 100},  # closure: unpicklable
        )
        spec = program.spec()
        with pytest.raises(SweepConfigError, match="closure-signals"):
            spec.ensure_picklable()


class TestProcessSweep:
    """executor="process": multi-core fan-out with serial-identical reports."""

    def build_quickstart_grid(self):
        return (
            Sweep("quickstart", duration=Fraction(1, 50))
            .add_axis("utilisation", [0.3, 0.5])
            .add_axis(
                "scheduler",
                [None, SelfTimedUnbounded(), BoundedProcessors(1), BoundedProcessors(2)],
            )
        )

    def test_process_vs_thread_vs_serial_reports_identical(self):
        serial = self.build_quickstart_grid().run(workers=1)
        threaded = self.build_quickstart_grid().run(executor="thread", workers=3)
        process = self.build_quickstart_grid().run(executor="process", workers=2)
        assert serial.ok and threaded.ok and process.ok, [
            failure.error for failure in process.failures
        ]
        assert not process.warnings
        assert serial.rows() == threaded.rows() == process.rows()
        assert (
            serial.speedup_table() == threaded.speedup_table() == process.speedup_table()
        )
        assert serial.to_json() == process.to_json()
        # simulations stay in the workers: process results carry no RunResult
        assert all(result.run is None for result in process.results)

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            Sweep("quickstart").run(executor="rocket")

    def test_unpicklable_program_axis_falls_back_to_threads(self):
        sweep = (
            Sweep("quickstart", duration=Fraction(1, 100))
            .add_axis("signal", [(float(i) for i in range(100))])
            .add_axis("scheduler", [None, BoundedProcessors(1)])
        )
        report = sweep.run(executor="process", workers=2)
        assert report.ok, [failure.error for failure in report.failures]
        assert len(report) == 2
        assert any("thread executor" in warning for warning in report.warnings)
        assert any("'signal'" in warning for warning in report.warnings)

    def test_strict_mode_raises_naming_the_axis(self):
        sweep = (
            Sweep("quickstart", duration=Fraction(1, 100))
            .add_axis("signal", [(float(i) for i in range(100))])
            .add_axis("scheduler", [None, BoundedProcessors(1)])
        )
        with pytest.raises(SweepConfigError, match="'signal'"):
            sweep.run(executor="process", workers=2, strict=True)

    def test_strict_applies_to_serial_and_thread_backends_too(self):
        # strict forbids the repr-based dedup-key fallback everywhere, not
        # just on the process backend -- it must never be a silent no-op.
        def build():
            return Sweep("quickstart", duration=Fraction(1, 100)).add_axis(
                "signal", [(float(i) for i in range(100))]
            )

        with pytest.raises(SweepConfigError, match="'signal'"):
            build().run(strict=True)
        with pytest.raises(SweepConfigError, match="'signal'"):
            build().run(executor="thread", workers=2, strict=True)

    def test_unpicklable_run_param_degrades_that_point_only(self):
        class LocalPolicy(SelfTimedUnbounded):
            """Test-local class: unpicklable (not importable), deepcopy-able,
            behaviourally identical to the default policy."""

        sweep = (
            Sweep("quickstart", duration=Fraction(1, 50))
            .add_axis("scheduler", [LocalPolicy(), BoundedProcessors(1), BoundedProcessors(2)])
        )
        report = sweep.run(executor="process", workers=2)
        assert report.ok, [failure.error for failure in report.failures]
        assert any("running the point in-process" in w for w in report.warnings)
        serial = (
            Sweep("quickstart", duration=Fraction(1, 50))
            .add_axis(
                "scheduler",
                [SelfTimedUnbounded(), BoundedProcessors(1), BoundedProcessors(2)],
            )
            .run()
        )
        # identical metrics row-for-row (params render differently: the
        # degraded point's policy repr differs, so compare the metric columns)
        for key in ("completed_firings", "makespan", "deadline_misses"):
            assert report.column(key) == serial.column(key)

    def test_from_callable_runs_in_processes(self):
        report = (
            Sweep.from_callable(_square_point)
            .add_axis("n", [1, 2, 3, 4, 5])
            .run(executor="process", workers=2)
        )
        assert report.ok and not report.warnings
        assert report.column("value") == [1, 4, 9, 16, 25]

    def test_unpicklable_runner_falls_back_to_threads(self):
        report = (
            Sweep.from_callable(lambda n: {"value": n})
            .add_axis("n", [1, 2, 3])
            .run(executor="process", workers=2)
        )
        assert report.ok
        assert any("not picklable" in warning for warning in report.warnings)
        assert report.column("value") == [1, 2, 3]

    def test_worker_crash_reruns_points_in_parent(self):
        report = (
            Sweep.from_callable(_crash_in_worker)
            .add_axis("n", [1, 2, 3, 4])
            .run(executor="process", workers=2)
        )
        assert report.ok, [failure.error for failure in report.failures]
        assert any("re-running" in warning for warning in report.warnings)
        assert report.column("value") == [1, 2, 3, 4]

    def test_failing_points_report_identically_across_backends(self):
        def build():
            return (
                Sweep("quickstart", duration=Fraction(1, 100))
                # scheduler axis values must implement the policy protocol;
                # an int produces a per-point failure, not a sweep failure
                .add_axis("scheduler", [None, 42, BoundedProcessors(1)])
            )

        serial = build().run(workers=1)
        process = build().run(executor="process", workers=2)
        assert [result.ok for result in process.results] == [True, False, True]
        assert process.rows() == serial.rows()
        assert process.results[1].error == serial.results[1].error


class TestSweep:
    def test_grid_expansion_order(self):
        sweep = Sweep("quickstart").add_axis("a", [1, 2]).add_axis("b", ["x", "y"])
        assert sweep.points() == [
            {"a": 1, "b": "x"},
            {"a": 1, "b": "y"},
            {"a": 2, "b": "x"},
            {"a": 2, "b": "y"},
        ]

    def test_distinct_programs_compiled_once(self, monkeypatch):
        import repro.api.sweep as sweep_module

        calls = []
        original = sweep_module.Program.from_app.__func__

        def counting(cls, app, **params):
            calls.append((app, tuple(sorted(params.items()))))
            return original(cls, app, **params)

        monkeypatch.setattr(
            sweep_module.Program, "from_app", classmethod(counting)
        )
        report = (
            Sweep("quickstart", duration=Fraction(1, 50))
            .add_axis("utilisation", [0.3, 0.5])
            .add_axis("scheduler", [None, BoundedProcessors(2)])
            .run()
        )
        assert report.ok
        assert len(report) == 4
        assert len(calls) == 2  # one compilation per distinct program point

    def test_serial_and_parallel_reports_identical(self):
        def build():
            return (
                Sweep("quickstart", duration=Fraction(1, 20))
                .add_axis("utilisation", [0.3, 0.5])
                .add_axis(
                    "scheduler", [None, BoundedProcessors(1), BoundedProcessors(2)]
                )
            )

        serial = build().run(workers=1)
        parallel = build().run(workers=3)
        assert serial.ok and parallel.ok
        assert serial.rows() == parallel.rows()
        assert serial.speedup_table() == parallel.speedup_table()
        assert serial.to_json() == parallel.to_json()

    def test_bounded_processor_sweep_shape(self):
        report = (
            Sweep("quickstart", duration=Fraction(1, 10))
            .add_axis("scheduler", [BoundedProcessors(1), BoundedProcessors(2)])
            .run(workers=2)
        )
        table = report.table()
        assert "BoundedProcessors(1)" in table and "BoundedProcessors(2)" in table
        speedups = [row["speedup"] for row in report.speedup_table()]
        assert speedups[0] == 1.0
        assert all(value is not None for value in speedups)

    def test_run_axis_duration_override(self):
        report = (
            Sweep("quickstart", duration=Fraction(1))
            .add_axis("duration", [Fraction(1, 100), Fraction(1, 50)])
            .run()
        )
        short, longer = report.results
        assert short.metrics["completed_firings"] < longer.metrics["completed_firings"]

    def test_program_axis_dedup_is_value_based(self):
        # Distinct parameter values whose reprs collide (numpy truncates
        # reprs past 1000 elements) must NOT collapse into one program.
        numpy = pytest.importorskip("numpy")
        a = numpy.zeros(2000)
        b = numpy.zeros(2000)
        b[10] = 7.5
        assert repr(a) == repr(b)
        report = (
            Sweep("quickstart", duration=Fraction(1, 100))
            .add_axis("signal", [list(a), list(b)])
            .run()
        )
        assert report.ok
        first, second = (result.run.sink("averages") for result in report.results)
        assert first != second  # each point ran its own stimulus

    def test_unpicklable_program_axis_falls_back_to_repr_keys(self):
        # Unpicklable axis values (generators, lambdas, open handles) must
        # not crash the sweep: the dedup key falls back to a repr-based key.
        # Default object reprs embed the id, so such points may compile the
        # same program redundantly -- never crash, never share wrongly.
        from repro.api.sweep import _program_key

        values = [(float(i) for i in range(100)), (float(i) for i in range(100))]
        with pytest.raises(Exception):
            import pickle

            pickle.dumps(values[0])  # the premise: generators are unpicklable
        keys = [_program_key({"signal": value}) for value in values]
        assert keys[0] != keys[1]  # distinct instances -> distinct (repr) keys

        report = (
            Sweep("quickstart", duration=Fraction(1, 100))
            .add_axis("signal", values)
            .run()
        )
        assert report.ok, [f.error for f in report.failures]
        assert len(report) == 2

    def test_speedup_table_direction(self):
        report = (
            Sweep.from_callable(lambda n: {"latency": float(n)})
            .add_axis("n", [1, 2])
            .run()
        )
        faster_is_higher = report.speedup_table("latency")
        assert faster_is_higher[1]["speedup"] == 2.0  # default: higher = better
        lower = report.speedup_table("latency", lower_is_better=True)
        assert lower[1]["speedup"] == 0.5  # doubled latency = 0.5x speedup
        makespan = (
            Sweep.from_callable(lambda n: {"makespan": float(n)})
            .add_axis("n", [2, 1])
            .run()
            .speedup_table("makespan")
        )
        assert makespan[1]["speedup"] == 2.0  # makespan infers lower-is-better

    def test_keep_runs_false_drops_simulations(self):
        report = (
            Sweep("quickstart", duration=Fraction(1, 100))
            .add_axis("scheduler", [None, BoundedProcessors(1)])
            .run(keep_runs=False)
        )
        assert report.ok
        assert all(result.run is None for result in report.results)
        assert all(result.metrics["completed_firings"] > 0 for result in report.results)

    def test_from_callable_and_failure_isolation(self):
        def point(n):
            if n == 2:
                raise ValueError("boom")
            return {"value": n * n}

        report = Sweep.from_callable(point).add_axis("n", [1, 2, 3]).run(workers=2)
        assert not report.ok
        assert [r.ok for r in report.results] == [True, False, True]
        assert report.results[1].error == "ValueError: boom"
        assert report.column("value") == [1, None, 9]

    def test_scheduler_instances_not_shared_between_points(self):
        policy = BoundedProcessors(1)
        report = (
            Sweep("quickstart", duration=Fraction(1, 50))
            .add_axis("scheduler", [policy, policy])
            .run(workers=2)
        )
        assert report.ok
        assert policy.busy == 0  # the caller's instance was never mutated
        rows = report.rows()
        assert rows[0]["completed_firings"] == rows[1]["completed_firings"]


class TestSweepReportJson:
    """SweepReport.from_json is the exact inverse of to_json."""

    def test_roundtrip_with_failures_and_warnings(self):
        def point(n):
            if n == 2:
                raise ValueError("boom")
            return {"value": n * n, "warnings": ["synthetic degradation"]}

        report = Sweep.from_callable(point, name="rt").add_axis("n", [1, 2, 3]).run()
        restored = SweepReport.from_json(report.to_json())
        assert restored.name == report.name
        assert restored.warnings == report.warnings  # incl. hoisted per-point
        assert restored.rows() == report.rows()
        assert [r.ok for r in restored.results] == [True, False, True]
        assert restored.results[1].error == "ValueError: boom"
        # idempotent: the restored report re-serialises byte-identically,
        # and a second round trip is a fixed point
        assert restored.to_json() == report.to_json()
        assert SweepReport.from_json(restored.to_json()).to_json() == report.to_json()

    def test_real_sweep_roundtrip_every_rendering(self):
        report = (
            Sweep("quickstart", duration=Fraction(1, 50))
            .add_axis("scheduler", [None, BoundedProcessors(1)])
            .run()
        )
        restored = SweepReport.from_json(report.to_json())
        assert restored.to_json() == report.to_json()
        assert restored.rows() == report.rows()
        assert restored.table() == report.table()
        assert restored.speedup_table() == report.speedup_table()

    _json_scalars = st.none() | st.booleans() | st.integers() | st.text(max_size=20) | st.floats(allow_nan=False, allow_infinity=False)
    _values = st.recursive(
        _json_scalars,
        lambda children: st.lists(children, max_size=3)
        | st.dictionaries(st.text(max_size=8), children, max_size=3),
        max_leaves=8,
    )
    _keys = st.text(max_size=12).filter(lambda k: k != "warnings")

    @given(
        points=st.lists(
            st.tuples(
                st.booleans(),
                st.dictionaries(_keys, _values, max_size=4),
                st.dictionaries(_keys, _values, max_size=4),
            ),
            max_size=6,
        ),
        warnings=st.lists(st.text(max_size=30), max_size=3),
        name=st.text(max_size=20),
    )
    def test_roundtrip_property(self, points, warnings, name):
        results = [
            SweepResult(
                index=i,
                params=params,
                ok=ok,
                error=None if ok else "Error: synthetic",
                metrics=metrics if ok else {},
            )
            for i, (ok, params, metrics) in enumerate(points)
        ]
        report = SweepReport(results, name=name, warnings=warnings)
        restored = SweepReport.from_json(report.to_json())
        assert restored.to_json() == report.to_json()
        assert restored.rows() == report.rows()
        assert restored.warnings == report.warnings
        assert [r.ok for r in restored.results] == [r.ok for r in report.results]


class TestWarningsPropagation:
    """Per-point run warnings must survive every process-backend degradation
    path, alongside the degradation's own warning (the happy path is covered
    elsewhere; these pin the fallback paths)."""

    @staticmethod
    def _fraction_ff_axes(sweep):
        # fast_forward on a fraction time base is refused with a per-point
        # "integer-tick" warning on every point -- a deterministic marker
        return sweep.add_axis("fast_forward", [True]).add_axis(
            "time_base", ["fraction"]
        )

    def test_thread_fallback_keeps_point_warnings(self):
        sweep = self._fraction_ff_axes(
            Sweep("quickstart", duration=Fraction(1, 100)).add_axis(
                "signal", [(float(i) for i in range(100))]  # unpicklable axis
            )
        )
        report = sweep.run(executor="process", workers=2)
        assert report.ok, [failure.error for failure in report.failures]
        assert any("thread executor" in w for w in report.warnings)
        assert any("integer-tick" in w for w in report.warnings)
        # the run warning also stays inside the point's metric row
        assert any(
            "integer-tick" in w for w in report.results[0].metrics["warnings"]
        )

    def test_in_parent_rerun_keeps_point_warnings(self):
        class LocalPolicy(SelfTimedUnbounded):
            """Unpicklable run-axis value: forces the in-parent re-run."""

        sweep = self._fraction_ff_axes(
            Sweep("quickstart", duration=Fraction(1, 100)).add_axis(
                "scheduler", [LocalPolicy(), BoundedProcessors(1)]
            )
        )
        report = sweep.run(executor="process", workers=2)
        assert report.ok, [failure.error for failure in report.failures]
        assert any("running the point in-process" in w for w in report.warnings)
        # both the degraded point and the worker-run point kept their
        # fast-forward refusal warning
        point_warnings = [
            w for w in report.warnings if w.startswith("point ") and "integer-tick" in w
        ]
        assert len(point_warnings) == 2

    def test_worker_crash_rerun_keeps_report_order(self):
        report = (
            Sweep.from_callable(_crash_in_worker)
            .add_axis("n", [1, 2, 3, 4])
            .run(executor="process", workers=2)
        )
        restored = SweepReport.from_json(report.to_json())
        assert any("re-running" in w for w in restored.warnings)
        assert restored.column("value") == [1, 2, 3, 4]


class TestDeprecatedAliases:
    def test_compile_quickstart_warns_and_works(self):
        from repro.apps.producer_consumer import compile_quickstart

        with pytest.warns(DeprecationWarning, match="compile_quickstart"):
            result = compile_quickstart()
        assert result.check_consistency(assume_infinite_unsized=True).consistent

    def test_simulate_quickstart_matches_facade(self):
        from repro.apps.producer_consumer import simulate_quickstart

        with pytest.warns(DeprecationWarning, match="simulate_quickstart"):
            simulation, trace = simulate_quickstart(Fraction(1, 10))
        run = quickstart_facade().analyze().run(Fraction(1, 10))
        assert simulation.sinks["averages"].consumed == run.sink("averages")
        assert trace.deadline_miss_count() == run.deadline_misses

    def test_simulate_mute_warns(self):
        from repro.apps.modal_audio import simulate_mute

        with pytest.warns(DeprecationWarning, match="simulate_mute"):
            simulation, trace = simulate_mute(Fraction(1, 50), [1.0] * 2000)
        assert trace.deadline_miss_count() == 0

    def test_simulate_two_mode_warns_and_matches_facade(self):
        from repro.apps.modal_audio import simulate_two_mode

        schedule = (("loop0", 2), ("loop1", 3))
        with pytest.warns(DeprecationWarning, match="simulate_two_mode"):
            simulation, _ = simulate_two_mode(Fraction(1, 25), mode_schedule=schedule)
        run = (
            Program.from_app("modal_two_mode", mode_schedule=schedule)
            .analyze()
            .run(Fraction(1, 25))
        )
        assert simulation.sinks["dac"].consumed == run.sink("dac")

    def test_analysis_from_parts_wraps_precompiled_results(self, quickstart_sized):
        result, sizing = quickstart_sized
        analysis = Analysis.from_parts(result, sizing)
        assert analysis.capacities == sizing.capacities
        assert analysis.program.name == "precompiled"
