"""Tests for the repro.api facade: Program -> Analysis -> RunResult, the app
catalogue, the Sweep subsystem and the deprecated pre-facade aliases."""

from fractions import Fraction

import pytest

from repro.api import Analysis, Program, Sweep, available_apps, build_app
from repro.apps.producer_consumer import (
    QUICKSTART_OIL_SOURCE,
    quickstart_registry,
    quickstart_wcets,
)
from repro.core.compiler import compile_program
from repro.engine import BoundedProcessors


def quickstart_facade(**params):
    return Program.from_app("quickstart", **params)


class TestProgramFacade:
    def test_catalogue_lists_all_apps(self):
        names = [spec.name for spec in available_apps()]
        assert names == [
            "quickstart",
            "pal_decoder",
            "rate_converter",
            "modal_mute",
            "modal_two_mode",
        ]

    def test_unknown_app_and_unknown_param(self):
        with pytest.raises(KeyError, match="unknown app"):
            Program.from_app("no_such_app")
        with pytest.raises(TypeError, match="does not accept"):
            Program.from_app("quickstart", bogus=1)

    def test_aliases_resolve(self):
        assert build_app("producer_consumer").name == "quickstart"
        assert build_app("fig2").name == "rate_converter"

    def test_compile_and_analysis_are_cached(self):
        program = quickstart_facade()
        assert program.compile() is program.compile()
        assert program.analyze() is program.analyze()

    def test_from_source_equals_from_app(self):
        source = Program.from_source(
            QUICKSTART_OIL_SOURCE,
            function_wcets=quickstart_wcets(),
            registry=quickstart_registry,
            signals=lambda: {"samples": [float(i) for i in range(2000)]},
        )
        by_app = quickstart_facade()
        assert source.analyze().capacities == by_app.analyze().capacities

    @pytest.mark.parametrize(
        "app,params,duration",
        [
            ("quickstart", {}, Fraction(1, 10)),
            ("pal_decoder", {"scale": 1000}, Fraction(1, 50)),
            ("rate_converter", {}, Fraction(1, 100)),
            ("modal_mute", {}, Fraction(1, 20)),
            ("modal_two_mode", {}, Fraction(1, 50)),
        ],
    )
    def test_every_app_analyzes_and_runs(self, app, params, duration):
        analysis = Program.from_app(app, **params).analyze()
        assert analysis.consistent
        assert analysis.latency_ok
        assert all(value >= 1 for value in analysis.capacities.values())
        run = analysis.run(duration)
        assert run.completed_firings > 0
        assert run.occupancy_ok
        assert run.deadline_misses == 0


class TestAnalysisParity:
    """The facade must reproduce the pre-facade helper numbers identically."""

    def test_quickstart_parity_with_direct_pipeline(self):
        direct = compile_program(QUICKSTART_OIL_SOURCE, function_wcets=quickstart_wcets())
        direct_consistency = direct.check_consistency(assume_infinite_unsized=True)
        direct_sizing = direct.size_buffers()
        direct_checks = direct.verify_latency(direct_sizing.consistency)

        analysis = quickstart_facade().analyze()
        assert analysis.consistent == direct_consistency.consistent
        assert analysis.capacities == direct_sizing.capacities
        assert analysis.total_capacity == direct_sizing.total_capacity
        assert [c.satisfied for c in analysis.latency] == [
            c.satisfied for c in direct_checks
        ]
        assert analysis.source_rates == {"samples": Fraction(2000)}
        assert analysis.sink_rates == {"averages": Fraction(1000)}

    def test_pal_parity_with_session_fixture(self, pal_sized):
        result, sizing = pal_sized
        analysis = Program.from_app("pal_decoder", scale=1000).analyze()
        assert analysis.capacities == sizing.capacities
        assert analysis.consistent
        assert analysis.latency_ok

    def test_quickstart_run_reproduces_simulation_numbers(self):
        run = quickstart_facade().analyze().run(Fraction(1, 5))
        assert run.deadline_misses == 0
        assert run.sink("averages")[:4] == [0.5, 2.5, 4.5, 6.5]
        assert run.measured_rates["averages"] == 1000
        assert run.measured_rates["samples"] == 2000
        assert run.occupancy_ok
        metrics = run.metrics()
        assert metrics["deadline_misses"] == 0
        assert metrics["sink_count[averages]"] == len(run.sink("averages"))
        assert "deadline violations: 0" in run.summary()

    def test_analysis_report_mentions_everything(self):
        report = quickstart_facade().analyze().report()
        assert "consistency" in report
        assert "source samples: 2000 Hz" in report
        assert "buffer sizing" in report
        assert "latency" in report


class TestSweep:
    def test_grid_expansion_order(self):
        sweep = Sweep("quickstart").add_axis("a", [1, 2]).add_axis("b", ["x", "y"])
        assert sweep.points() == [
            {"a": 1, "b": "x"},
            {"a": 1, "b": "y"},
            {"a": 2, "b": "x"},
            {"a": 2, "b": "y"},
        ]

    def test_distinct_programs_compiled_once(self, monkeypatch):
        import repro.api.sweep as sweep_module

        calls = []
        original = sweep_module.Program.from_app.__func__

        def counting(cls, app, **params):
            calls.append((app, tuple(sorted(params.items()))))
            return original(cls, app, **params)

        monkeypatch.setattr(
            sweep_module.Program, "from_app", classmethod(counting)
        )
        report = (
            Sweep("quickstart", duration=Fraction(1, 50))
            .add_axis("utilisation", [0.3, 0.5])
            .add_axis("scheduler", [None, BoundedProcessors(2)])
            .run()
        )
        assert report.ok
        assert len(report) == 4
        assert len(calls) == 2  # one compilation per distinct program point

    def test_serial_and_parallel_reports_identical(self):
        def build():
            return (
                Sweep("quickstart", duration=Fraction(1, 20))
                .add_axis("utilisation", [0.3, 0.5])
                .add_axis(
                    "scheduler", [None, BoundedProcessors(1), BoundedProcessors(2)]
                )
            )

        serial = build().run(workers=1)
        parallel = build().run(workers=3)
        assert serial.ok and parallel.ok
        assert serial.rows() == parallel.rows()
        assert serial.speedup_table() == parallel.speedup_table()
        assert serial.to_json() == parallel.to_json()

    def test_bounded_processor_sweep_shape(self):
        report = (
            Sweep("quickstart", duration=Fraction(1, 10))
            .add_axis("scheduler", [BoundedProcessors(1), BoundedProcessors(2)])
            .run(workers=2)
        )
        table = report.table()
        assert "BoundedProcessors(1)" in table and "BoundedProcessors(2)" in table
        speedups = [row["speedup"] for row in report.speedup_table()]
        assert speedups[0] == 1.0
        assert all(value is not None for value in speedups)

    def test_run_axis_duration_override(self):
        report = (
            Sweep("quickstart", duration=Fraction(1))
            .add_axis("duration", [Fraction(1, 100), Fraction(1, 50)])
            .run()
        )
        short, longer = report.results
        assert short.metrics["completed_firings"] < longer.metrics["completed_firings"]

    def test_program_axis_dedup_is_value_based(self):
        # Distinct parameter values whose reprs collide (numpy truncates
        # reprs past 1000 elements) must NOT collapse into one program.
        numpy = pytest.importorskip("numpy")
        a = numpy.zeros(2000)
        b = numpy.zeros(2000)
        b[10] = 7.5
        assert repr(a) == repr(b)
        report = (
            Sweep("quickstart", duration=Fraction(1, 100))
            .add_axis("signal", [list(a), list(b)])
            .run()
        )
        assert report.ok
        first, second = (result.run.sink("averages") for result in report.results)
        assert first != second  # each point ran its own stimulus

    def test_unpicklable_program_axis_falls_back_to_repr_keys(self):
        # Unpicklable axis values (generators, lambdas, open handles) must
        # not crash the sweep: the dedup key falls back to a repr-based key.
        # Default object reprs embed the id, so such points may compile the
        # same program redundantly -- never crash, never share wrongly.
        from repro.api.sweep import _program_key

        values = [(float(i) for i in range(100)), (float(i) for i in range(100))]
        with pytest.raises(Exception):
            import pickle

            pickle.dumps(values[0])  # the premise: generators are unpicklable
        keys = [_program_key({"signal": value}) for value in values]
        assert keys[0] != keys[1]  # distinct instances -> distinct (repr) keys

        report = (
            Sweep("quickstart", duration=Fraction(1, 100))
            .add_axis("signal", values)
            .run()
        )
        assert report.ok, [f.error for f in report.failures]
        assert len(report) == 2

    def test_speedup_table_direction(self):
        report = (
            Sweep.from_callable(lambda n: {"latency": float(n)})
            .add_axis("n", [1, 2])
            .run()
        )
        faster_is_higher = report.speedup_table("latency")
        assert faster_is_higher[1]["speedup"] == 2.0  # default: higher = better
        lower = report.speedup_table("latency", lower_is_better=True)
        assert lower[1]["speedup"] == 0.5  # doubled latency = 0.5x speedup
        makespan = (
            Sweep.from_callable(lambda n: {"makespan": float(n)})
            .add_axis("n", [2, 1])
            .run()
            .speedup_table("makespan")
        )
        assert makespan[1]["speedup"] == 2.0  # makespan infers lower-is-better

    def test_keep_runs_false_drops_simulations(self):
        report = (
            Sweep("quickstart", duration=Fraction(1, 100))
            .add_axis("scheduler", [None, BoundedProcessors(1)])
            .run(keep_runs=False)
        )
        assert report.ok
        assert all(result.run is None for result in report.results)
        assert all(result.metrics["completed_firings"] > 0 for result in report.results)

    def test_from_callable_and_failure_isolation(self):
        def point(n):
            if n == 2:
                raise ValueError("boom")
            return {"value": n * n}

        report = Sweep.from_callable(point).add_axis("n", [1, 2, 3]).run(workers=2)
        assert not report.ok
        assert [r.ok for r in report.results] == [True, False, True]
        assert report.results[1].error == "ValueError: boom"
        assert report.column("value") == [1, None, 9]

    def test_scheduler_instances_not_shared_between_points(self):
        policy = BoundedProcessors(1)
        report = (
            Sweep("quickstart", duration=Fraction(1, 50))
            .add_axis("scheduler", [policy, policy])
            .run(workers=2)
        )
        assert report.ok
        assert policy.busy == 0  # the caller's instance was never mutated
        rows = report.rows()
        assert rows[0]["completed_firings"] == rows[1]["completed_firings"]


class TestDeprecatedAliases:
    def test_compile_quickstart_warns_and_works(self):
        from repro.apps.producer_consumer import compile_quickstart

        with pytest.warns(DeprecationWarning, match="compile_quickstart"):
            result = compile_quickstart()
        assert result.check_consistency(assume_infinite_unsized=True).consistent

    def test_simulate_quickstart_matches_facade(self):
        from repro.apps.producer_consumer import simulate_quickstart

        with pytest.warns(DeprecationWarning, match="simulate_quickstart"):
            simulation, trace = simulate_quickstart(Fraction(1, 10))
        run = quickstart_facade().analyze().run(Fraction(1, 10))
        assert simulation.sinks["averages"].consumed == run.sink("averages")
        assert trace.deadline_miss_count() == run.deadline_misses

    def test_simulate_mute_warns(self):
        from repro.apps.modal_audio import simulate_mute

        with pytest.warns(DeprecationWarning, match="simulate_mute"):
            simulation, trace = simulate_mute(Fraction(1, 50), [1.0] * 2000)
        assert trace.deadline_miss_count() == 0

    def test_simulate_two_mode_warns_and_matches_facade(self):
        from repro.apps.modal_audio import simulate_two_mode

        schedule = (("loop0", 2), ("loop1", 3))
        with pytest.warns(DeprecationWarning, match="simulate_two_mode"):
            simulation, _ = simulate_two_mode(Fraction(1, 25), mode_schedule=schedule)
        run = (
            Program.from_app("modal_two_mode", mode_schedule=schedule)
            .analyze()
            .run(Fraction(1, 25))
        )
        assert simulation.sinks["dac"].consumed == run.sink("dac")

    def test_analysis_from_parts_wraps_precompiled_results(self, quickstart_sized):
        result, sizing = quickstart_sized
        analysis = Analysis.from_parts(result, sizing)
        assert analysis.capacities == sizing.capacities
        assert analysis.program.name == "precompiled"
