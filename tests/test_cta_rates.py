"""Tests for transfer-rate propagation (rate components, scales, conflicts)."""

from fractions import Fraction

from repro.cta import CTAModel, compute_rate_structure


def build_chain(gammas, *, fixed_first=None, max_rates=None):
    """A linear chain of single-port components connected with given gammas."""
    model = CTAModel("m")
    components = []
    for index in range(len(gammas) + 1):
        c = model.new_component(f"c{index}")
        max_rate = None if max_rates is None else max_rates[index]
        c.add_port("p", max_rate=max_rate, fixed_rate=fixed_first if index == 0 else None)
        components.append(c)
    for index, gamma in enumerate(gammas):
        model.connect(
            components[index].port_ref("p"),
            components[index + 1].port_ref("p"),
            gamma=gamma,
        )
    return model, components


class TestRatePropagation:
    def test_relative_rates_along_chain(self):
        model, comps = build_chain([Fraction(1, 2), Fraction(3, 1)])
        structure = compute_rate_structure(model)
        assert structure.consistent
        assert len(structure.components) == 1
        rc = structure.components[0]
        rates = [rc.relative_rates[c.port_ref("p")] for c in comps]
        base = rates[0]
        assert rates[1] / base == Fraction(1, 2)
        assert rates[2] / base == Fraction(3, 2)

    def test_fixed_rate_pins_scale(self):
        model, comps = build_chain([Fraction(1, 4)], fixed_first=100)
        structure = compute_rate_structure(model)
        rc = structure.components[0]
        assert rc.fixed_scale is not None
        # The second port's actual rate is 25.
        rate = rc.rate_of(comps[1].port_ref("p"), rc.fixed_scale)
        assert rate == 25

    def test_max_rate_cap(self):
        model, comps = build_chain([Fraction(1, 2)], max_rates=[10, 100])
        structure = compute_rate_structure(model)
        rc = structure.components[0]
        # Port 0 capped at 10, port 1 at 100 but relative rate 1/2 -> cap 200.
        assert rc.scale_cap is not None
        assert rc.rate_of(comps[0].port_ref("p"), rc.scale_cap) <= 10

    def test_two_disconnected_components(self):
        model = CTAModel("m")
        a = model.new_component("a")
        b = model.new_component("b")
        a.add_port("p")
        b.add_port("p")
        structure = compute_rate_structure(model)
        assert len(structure.components) == 2

    def test_cycle_gamma_inconsistency(self):
        model = CTAModel("m")
        a = model.new_component("a")
        b = model.new_component("b")
        a.add_port("p")
        b.add_port("p")
        model.connect(a.port_ref("p"), b.port_ref("p"), gamma=2)
        model.connect(b.port_ref("p"), a.port_ref("p"), gamma=1)  # product != 1
        structure = compute_rate_structure(model)
        assert not structure.consistent
        assert structure.conflicts[0].kind == "cycle"

    def test_cycle_gamma_consistent(self):
        model = CTAModel("m")
        a = model.new_component("a")
        b = model.new_component("b")
        a.add_port("p")
        b.add_port("p")
        model.connect(a.port_ref("p"), b.port_ref("p"), gamma=2)
        model.connect(b.port_ref("p"), a.port_ref("p"), gamma=Fraction(1, 2))
        assert compute_rate_structure(model).consistent

    def test_fixed_rate_conflict(self):
        model = CTAModel("m")
        a = model.new_component("a")
        b = model.new_component("b")
        a.add_port("p", fixed_rate=10)
        b.add_port("p", fixed_rate=30)
        model.connect(a.port_ref("p"), b.port_ref("p"), gamma=2)  # implies 20 != 30
        structure = compute_rate_structure(model)
        assert not structure.consistent
        assert any(c.kind == "fixed" for c in structure.conflicts)

    def test_fixed_rate_exceeding_cap(self):
        model = CTAModel("m")
        a = model.new_component("a")
        b = model.new_component("b")
        a.add_port("p", fixed_rate=10)
        b.add_port("p", max_rate=3)
        model.connect(a.port_ref("p"), b.port_ref("p"), gamma=1)
        structure = compute_rate_structure(model)
        assert not structure.consistent

    def test_unknown_port_in_connection(self):
        model = CTAModel("m")
        a = model.new_component("a")
        a.add_port("p")
        model.connect(a.port_ref("p"), ("m", "ghost", "p"))
        try:
            compute_rate_structure(model)
            assert False, "expected ValueError"
        except ValueError as error:
            assert "unknown port" in str(error)
