"""Tests for the CTA consistency algorithm (feasibility, maximal rates)."""

from fractions import Fraction

import pytest

from repro.cta import (
    BufferParameter,
    CTAModel,
    check_consistency,
    maximal_rates,
    verify_throughput,
)


def producer_consumer_model(*, wcet_p=Fraction(1, 100), wcet_c=Fraction(1, 100), sink_rate=None, capacity=None):
    """Producer -> consumer pipeline with a capacity-constrained buffer."""
    model = CTAModel("pc")
    producer = model.new_component("producer", kind="task")
    consumer = model.new_component("consumer", kind="task")
    producer.add_port("space", direction="in")
    producer.add_port("data", direction="out")
    consumer.add_port("data", direction="in", fixed_rate=sink_rate)
    consumer.add_port("space", direction="out")
    producer.connect(producer.port_ref("space"), producer.port_ref("data"), epsilon=wcet_p, purpose="firing")
    consumer.connect(consumer.port_ref("data"), consumer.port_ref("space"), epsilon=wcet_c, purpose="firing")
    buffer = BufferParameter("b", minimum=1, value=capacity)
    model.connect(producer.port_ref("data"), consumer.port_ref("data"), purpose="buffer-data")
    model.connect(consumer.port_ref("space"), producer.port_ref("space"), buffer=buffer, purpose="buffer")
    return model, buffer


class TestFixedRateConsistency:
    def test_feasible_with_big_buffer(self):
        model, _ = producer_consumer_model(sink_rate=10, capacity=4)
        result = check_consistency(model)
        assert result.consistent
        # Every port of the single rate component runs at the sink rate.
        assert set(result.port_rates.values()) == {Fraction(10)}

    def test_infeasible_when_buffer_too_small_for_rate(self):
        # Cycle delay: 0.2 s of processing, buffer 1 token, required rate 10/s
        # -> 0.2 - 1/10 > 0: inconsistent.
        model, _ = producer_consumer_model(
            wcet_p=Fraction(1, 10), wcet_c=Fraction(1, 10), sink_rate=10, capacity=1
        )
        result = check_consistency(model)
        assert not result.consistent
        assert any(v.kind == "cycle" for v in result.violations)

    def test_offsets_satisfy_all_connections(self):
        model, _ = producer_consumer_model(sink_rate=10, capacity=4)
        result = check_consistency(model)
        for connection in model.all_connections():
            src_rate = result.port_rates[connection.src]
            delay = connection.delay(src_rate)
            assert result.offsets[connection.dst] >= result.offsets[connection.src] + delay

    def test_rate_conflict_reported(self):
        model = CTAModel("m")
        a = model.new_component("a")
        b = model.new_component("b")
        a.add_port("p", fixed_rate=10)
        b.add_port("p", fixed_rate=11)
        model.connect(a.port_ref("p"), b.port_ref("p"))
        result = check_consistency(model)
        assert not result.consistent
        assert any(v.kind == "rate" for v in result.violations)


class TestMaximalRates:
    def test_rate_limited_by_buffer_cycle(self):
        # Free component: max rate = capacity / total processing time.
        model, _ = producer_consumer_model(
            wcet_p=Fraction(1, 10), wcet_c=Fraction(1, 10), capacity=3
        )
        rates = maximal_rates(model)
        assert set(rates.values()) == {Fraction(3) / Fraction(1, 5)}

    def test_rate_limited_by_max_rate_cap(self):
        model = CTAModel("m")
        a = model.new_component("a")
        a.add_port("p", max_rate=42)
        rates = maximal_rates(model)
        assert rates[a.port_ref("p")] == 42

    def test_unbounded_rate(self):
        model = CTAModel("m")
        a = model.new_component("a")
        a.add_port("p")
        rates = maximal_rates(model)
        assert rates[a.port_ref("p")] is None

    def test_larger_buffer_allows_higher_rate(self):
        model_small, _ = producer_consumer_model(capacity=2)
        model_large, _ = producer_consumer_model(capacity=6)
        small = set(maximal_rates(model_small).values()).pop()
        large = set(maximal_rates(model_large).values()).pop()
        assert large > small

    def test_infeasible_at_any_rate(self):
        # A purely constant positive cycle cannot be fixed by slowing down.
        model = CTAModel("m")
        a = model.new_component("a")
        a.add_port("x")
        a.add_port("y")
        model.connect(a.port_ref("x"), a.port_ref("y"), epsilon=1)
        model.connect(a.port_ref("y"), a.port_ref("x"), epsilon=1)
        result = check_consistency(model)
        assert not result.consistent


class TestUnsizedBuffers:
    def test_unsized_requires_flag(self):
        model, buffer = producer_consumer_model(sink_rate=10)
        assert buffer.value is None
        with pytest.raises(ValueError):
            check_consistency(model)

    def test_unsized_treated_as_infinite(self):
        model, _ = producer_consumer_model(sink_rate=10)
        result = check_consistency(model, assume_infinite_unsized=True)
        assert result.consistent


class TestVerifyThroughput:
    def test_requirement_met(self):
        model, _ = producer_consumer_model(capacity=4)
        port = model.child("consumer").port_ref("data")
        ok, problems = verify_throughput(model, {port: Fraction(10)})
        assert ok, problems

    def test_requirement_not_met(self):
        model, _ = producer_consumer_model(
            wcet_p=Fraction(1, 2), wcet_c=Fraction(1, 2), capacity=1
        )
        port = model.child("consumer").port_ref("data")
        ok, problems = verify_throughput(model, {port: Fraction(100)})
        assert not ok
        assert problems
