"""The pre-flight rule framework: registry, runner, built-in rules, CLI.

Covers the framework invariants (registration validation, include/exclude
filter semantics, the never-crash runner), the acceptance criteria of the
rules layer (every packaged app checks clean; a rate-inconsistent program
fails with a structured violation carrying a ``rule_id`` and a source
span, through the Python API and the ``python -m repro check`` CLI) and
the platform-aware rule family.
"""

from __future__ import annotations

import json

import pytest

from repro.api import Program
from repro.api.apps import available_apps
from repro.platform import Platform
from repro.rules import (
    INTERNAL_ERROR_RULE_ID,
    CheckModel,
    CheckReport,
    Rule,
    Violation,
    all_rule_classes,
    categories,
    check_model,
    register_rule,
    rules_for,
    unregister_rule,
)
from repro.rules.cli import main as check_main

#: The quickstart pipeline with the sink rate broken: 2 kHz in, 2:1
#: downsampling, but a 3 kHz sink -- no consistent assignment of firing
#: rates exists, which ``rates.inconsistent`` must report with a span.
BROKEN_RATE_OIL = """\
mod seq Downsample(int x, out int y){
  loop{
    average2(x:2, out y);
  } while(1);
}

mod par {
  source int samples = sensor() @ 2 kHz;
  sink int averages = log_value() @ 3 kHz;
  Downsample(samples, out averages)
}
"""

#: The same pipeline, consistent (1 kHz sink).  Checks clean except for
#: runtime warnings/infos (unregistered function, default stimulus).
CONSISTENT_OIL = BROKEN_RATE_OIL.replace("@ 3 kHz", "@ 1 kHz")


def model_for(source: str, **kwargs) -> CheckModel:
    return CheckModel(Program.from_source(source, name="under-test"), **kwargs)


# --------------------------------------------------------------------------
# Violation / report shape
# --------------------------------------------------------------------------
class TestViolation:
    def test_to_dict_shape(self):
        from repro.lang.errors import SourceLocation

        violation = Violation(
            rule_id="x.y",
            category="x",
            severity="error",
            message="boom",
            span=SourceLocation(3, 7),
            extra={"detail": 1},
        )
        assert violation.to_dict() == {
            "rule_id": "x.y",
            "category": "x",
            "severity": "error",
            "message": "boom",
            "span": {"line": 3, "column": 7},
            "extra": {"detail": 1},
        }

    def test_spanless_to_dict_and_unknown_severity(self):
        violation = Violation(rule_id="x.y", category="x", severity="info", message="m")
        assert violation.to_dict()["span"] is None
        with pytest.raises(ValueError):
            Violation(rule_id="x.y", category="x", severity="fatal", message="m")

    def test_report_roundtrips_through_json(self):
        report = check_model(model_for(BROKEN_RATE_OIL), select=["rates"])
        payload = json.loads(report.to_json())
        assert payload["target"] == "under-test"
        assert payload["ok"] is False
        assert payload["counts"]["error"] >= 1


# --------------------------------------------------------------------------
# Registry
# --------------------------------------------------------------------------
class TestRegistry:
    def test_builtins_registered_and_sorted(self):
        ids = [cls.rule_id for cls in all_rule_classes()]
        assert ids == sorted(ids)
        assert "rates.inconsistent" in ids
        assert "lang.compile-error" in ids
        assert set(categories()) >= {"buffers", "lang", "latency", "platform", "rates", "runtime"}

    def test_registration_validates_identity(self):
        with pytest.raises(TypeError):
            register_rule(object)  # type: ignore[arg-type]

        class NoId(Rule):
            category = "local"

        with pytest.raises(ValueError, match="no rule_id"):
            register_rule(NoId)

        class BadSeverity(Rule):
            rule_id = "local.bad-severity"
            category = "local"
            severity = "fatal"

        with pytest.raises(ValueError, match="severity"):
            register_rule(BadSeverity)

        class Reserved(Rule):
            rule_id = INTERNAL_ERROR_RULE_ID
            category = "local"

        with pytest.raises(ValueError, match="reserved"):
            register_rule(Reserved)

    def test_duplicate_id_rejected_same_class_tolerated(self):
        class First(Rule):
            rule_id = "local.dup"
            category = "local"

        try:
            register_rule(First)
            register_rule(First)  # re-registering the same class is a no-op

            class Second(Rule):
                rule_id = "local.dup"
                category = "local"

            with pytest.raises(ValueError, match="duplicate rule id"):
                register_rule(Second)
        finally:
            unregister_rule("local.dup")

    def test_filter_by_category_id_and_prefix(self):
        by_category = rules_for(select=["rates"])
        assert {r.rule_id for r in by_category} == {
            "rates.inconsistent",
            "rates.infeasible-cycle",
            "rates.rate-cap",
        }
        by_id = rules_for(select=["rates.inconsistent"])
        assert [r.rule_id for r in by_id] == ["rates.inconsistent"]
        ignored = rules_for(ignore=["platform", "runtime"])
        assert not any(r.category in ("platform", "runtime") for r in ignored)

    def test_unmatched_filter_token_raises(self):
        with pytest.raises(ValueError, match="matches no registered rule"):
            rules_for(select=["no-such-thing"])
        with pytest.raises(ValueError, match="matches no registered rule"):
            rules_for(ignore=["rats"])  # typo of "rates" must not silently pass


# --------------------------------------------------------------------------
# Runner fault isolation
# --------------------------------------------------------------------------
class RaisingRule(Rule):
    rule_id = "local.raising"
    category = "local"
    severity = "error"
    description = "always crashes"

    def check(self, model):
        raise RuntimeError("kaboom")


class CountingRule(Rule):
    rule_id = "local.counting"
    category = "local"
    severity = "info"
    description = "reports one violation per call"

    def check(self, model):
        return [self.violation("still running")]


class TestRunnerFaultIsolation:
    def test_raising_rule_recorded_and_remaining_rules_run(self):
        report = check_model(
            model_for(CONSISTENT_OIL), rules=[RaisingRule(), CountingRule()]
        )
        assert report.rules_checked == 2
        internal = [v for v in report.violations if v.rule_id == INTERNAL_ERROR_RULE_ID]
        assert len(internal) == 1
        assert internal[0].severity == "warning"
        assert internal[0].extra["failed_rule"] == "local.raising"
        assert "kaboom" in internal[0].message
        # the crash did not stop the pass: the second rule's violation is there
        assert [v.message for v in report.violations if v.rule_id == "local.counting"] == [
            "still running"
        ]
        # a crashed rule is a warning, not an error: the report is still ok
        assert report.ok

    def test_violations_sorted_errors_first(self):
        report = check_model(model_for(BROKEN_RATE_OIL))
        severities = [v.severity for v in report.violations]
        from repro.rules import base

        assert severities == sorted(severities, key=base.severity_rank)
        assert severities[0] == "error"


# --------------------------------------------------------------------------
# Built-in rules over real programs
# --------------------------------------------------------------------------
class TestBuiltinRules:
    def test_every_packaged_app_checks_clean(self):
        for spec in available_apps():
            report = Program.from_app(spec.name).check()
            assert report.ok, f"{spec.name}: {report.render()}"
            assert not report.warnings, f"{spec.name}: {report.render()}"

    def test_rate_inconsistency_reported_with_span(self):
        report = check_model(model_for(BROKEN_RATE_OIL))
        assert not report.ok
        hits = [v for v in report.errors if v.rule_id == "rates.inconsistent"]
        assert hits, report.render()
        violation = hits[0]
        assert violation.span is not None
        assert violation.span.line >= 1 and violation.span.column >= 1
        assert "2000" in violation.message and "6000" in violation.message
        assert violation.extra["conflict_kind"] == "fixed"

    def test_compile_error_is_the_only_violation(self):
        report = check_model(model_for("mod par { source int x = f() @ 1 kHz; !!! }"))
        assert [v.rule_id for v in report.violations] == ["lang.compile-error"]
        assert report.violations[0].span is not None

    def test_unregistered_function_and_default_stimulus(self):
        report = check_model(model_for(CONSISTENT_OIL))
        assert report.ok  # warnings only
        ids = {v.rule_id for v in report.violations}
        assert "runtime.unregistered-function" in ids
        assert "runtime.default-stimulus" in ids

    def test_zero_slack_latency_is_info(self):
        report = Program.from_app("quickstart").check()
        assert [v.rule_id for v in report.violations] == ["latency.zero-slack"]
        assert report.violations[0].severity == "info"

    def test_undeclared_function_flagged_before_run(self):
        from repro.runtime.functions import FunctionRegistry

        def make_registry():
            registry = FunctionRegistry()
            registry.register("average2", lambda pair: sum(pair) / len(pair))
            return registry

        program = Program.from_source(
            CONSISTENT_OIL, name="undeclared", registry=make_registry
        )
        report = program.check(select=["runtime.undeclared-function"])
        codes = [v.extra.get("warning_code") for v in report.violations]
        assert codes == ["undeclared-function"]


class TestPlatformRules:
    def test_platform_rules_silent_without_platform(self):
        report = Program.from_app("quickstart").check(select=["platform"])
        assert report.violations == []

    def test_overutilised_and_task_overload(self):
        from fractions import Fraction

        report = Program.from_app("quickstart").check(
            platform=Platform.homogeneous(1, speed=Fraction(1, 1000)),
            select=["platform"],
        )
        ids = {v.rule_id for v in report.errors}
        assert "platform.overutilised" in ids
        assert "platform.task-overload" in ids
        overload = [v for v in report.errors if v.rule_id == "platform.task-overload"]
        assert overload[0].span is not None  # points at the task statement

    def test_unknown_affinity(self):
        platform = Platform.homogeneous(2)
        platform.mapping["no_such_task"] = "p0"
        report = Program.from_app("quickstart").check(
            platform=platform, select=["platform.unknown-affinity"]
        )
        assert [v.rule_id for v in report.errors] == ["platform.unknown-affinity"]

    def test_ample_platform_is_clean(self):
        report = Program.from_app("quickstart").check(
            platform=Platform.homogeneous(2), select=["platform"]
        )
        assert report.violations == []


# --------------------------------------------------------------------------
# CLI
# --------------------------------------------------------------------------
class TestCheckCli:
    def test_app_target_exits_zero(self, capsys):
        assert check_main(["quickstart"]) == 0
        out = capsys.readouterr().out
        assert "quickstart:" in out

    def test_broken_oil_file_fails_with_json_span(self, tmp_path, capsys):
        path = tmp_path / "broken.oil"
        path.write_text(BROKEN_RATE_OIL, encoding="utf-8")
        assert check_main([str(path), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        (report,) = payload["reports"]
        assert report["target"] == "broken"
        inconsistent = [
            v for v in report["violations"] if v["rule_id"] == "rates.inconsistent"
        ]
        assert inconsistent, report
        span = inconsistent[0]["span"]
        assert span is not None and span["line"] >= 1 and span["column"] >= 1
        assert inconsistent[0]["severity"] == "error"

    def test_strict_promotes_warnings(self, tmp_path, capsys):
        path = tmp_path / "warned.oil"
        path.write_text(CONSISTENT_OIL, encoding="utf-8")
        assert check_main([str(path)]) == 0
        assert check_main([str(path), "--strict"]) == 1
        capsys.readouterr()

    def test_select_limits_the_pass(self, tmp_path, capsys):
        path = tmp_path / "warned.oil"
        path.write_text(CONSISTENT_OIL, encoding="utf-8")
        assert check_main([str(path), "--select", "rates", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["reports"][0]["rules_checked"] == 3

    def test_usage_errors_exit_two(self, tmp_path, capsys):
        assert check_main(["no-such-app"]) == 2
        assert check_main(["quickstart", "--select", "bogus"]) == 2
        assert check_main([]) == 2
        assert check_main(["quickstart", "--processors", "0"]) == 2
        missing = tmp_path / "missing.oil"
        assert check_main([str(missing)]) == 2
        err = capsys.readouterr().err
        assert "error:" in err

    def test_processors_engages_platform_rules(self, capsys):
        assert check_main(["quickstart", "--processors", "2"]) == 0
        capsys.readouterr()

    def test_list_rules(self, capsys):
        assert check_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for cls in all_rule_classes():
            assert cls.rule_id in out

    def test_module_entry_dispatches_check(self, capsys):
        from repro.__main__ import main as module_main

        assert module_main(["check", "quickstart"]) == 0
        capsys.readouterr()
