"""Tests for the baselines and cross-cutting integration properties."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import (
    compare_scaling,
    decimation_pipeline_source,
    exact_analysis,
    format_comparison,
    generate_sequential_program,
    multirate_chain,
    multirate_cycle,
    rate_conversion_graph,
    schedule_growth,
)
from repro.core import compile_program
from repro.dataflow import repetition_vector, sdf_throughput, self_timed_statespace


class TestSequentialScheduleBaseline:
    def test_program_statement_count_equals_schedule(self):
        graph = rate_conversion_graph(3, 2)
        program = generate_sequential_program(graph)
        assert program.statement_count == len(program.schedule)
        assert program.statement_count == repetition_vector(graph).total_firings()

    def test_growth_with_coprime_rates(self):
        rows = schedule_growth([(3, 2), (7, 5), (16, 10), (25, 16)])
        lengths = [row.schedule_length for row in rows]
        assert lengths[0] < lengths[-1]
        assert all(row.oil_statements == 3 for row in rows)
        assert rows[-1].growth_factor > 5

    def test_deadlocked_graph_rejected(self):
        graph = rate_conversion_graph(3, 2, initial_factor=0)
        with pytest.raises(ValueError):
            generate_sequential_program(graph)


class TestExactBaseline:
    def test_chain_repetition_grows_exponentially(self):
        shallow = exact_analysis(multirate_chain(2), run_statespace=False)
        deep = exact_analysis(multirate_chain(5), run_statespace=False)
        assert deep.repetition_sum > 4 * shallow.repetition_sum
        assert deep.hsdf_actors == deep.repetition_sum

    def test_chain_throughput_finite(self):
        report = exact_analysis(multirate_chain(3), run_statespace=True)
        assert report.iteration_period is not None
        assert report.statespace_period is not None

    def test_cycle_workload(self):
        graph = multirate_cycle(4)
        result = sdf_throughput(graph)
        assert not result.deadlocked


class TestScalingComparison:
    def test_rows_and_formatting(self):
        rows = compare_scaling([1, 2, 3], rate=2, base_hz=1 << 12, size_buffers=False)
        assert [row.stages for row in rows] == [1, 2, 3]
        assert all(row.cta_consistent for row in rows)
        # The CTA model grows linearly, the repetition sum exponentially.
        assert rows[2].cta_ports - rows[1].cta_ports == rows[1].cta_ports - rows[0].cta_ports
        assert rows[2].sdf_repetition_sum > 2 * rows[1].sdf_repetition_sum
        text = format_comparison(rows)
        assert "stages" in text and len(text.splitlines()) == len(rows) + 2

    def test_decimation_source_compiles_at_depth(self):
        source = decimation_pipeline_source(4, rate=2, base_hz=1 << 12)
        wcets = {f"dec{i}": Fraction(1, 1 << 14) for i in range(4)}
        result = compile_program(source, function_wcets=wcets)
        consistency = result.check_consistency(assume_infinite_unsized=True)
        assert consistency.consistent


class TestAnalysisVsExecutionConservativeness:
    """The central soundness property: executing an application with the
    buffer capacities computed by the CTA analysis never violates the
    periodic source/sink deadlines."""

    def test_quickstart(self, quickstart_sized):
        from repro.apps.producer_consumer import simulate_quickstart

        result, sizing = quickstart_sized
        _, trace = simulate_quickstart(Fraction(1, 2), result=result, sizing=sizing)
        assert trace.deadline_miss_count() == 0

    def test_mute(self, mute_sized):
        from repro.apps.modal_audio import simulate_mute

        result, sizing = mute_sized
        _, trace = simulate_mute(Fraction(1, 4), [float(i % 7 - 3) for i in range(8000)], result=result, sizing=sizing)
        assert trace.deadline_miss_count() == 0

    @given(
        st.lists(
            st.tuples(st.sampled_from(["loop0", "loop1"]), st.integers(1, 6)),
            min_size=1,
            max_size=4,
        )
    )
    @settings(max_examples=8, deadline=None)
    def test_two_mode_any_schedule(self, two_mode_sized, schedule):
        from repro.apps.modal_audio import simulate_two_mode

        result, sizing = two_mode_sized
        # Ensure both loops appear so the schedule cycles sensibly.
        schedule = list(schedule) + [("loop1", 1), ("loop0", 1)]
        _, trace = simulate_two_mode(
            Fraction(1, 25), mode_schedule=schedule, result=result, sizing=sizing
        )
        assert trace.deadline_miss_count() == 0


class TestExactVsCTAThroughputRelation:
    def test_cta_rate_is_conservative_for_single_rate_pipeline(self):
        """For a simple pipeline the maximal rate reported by the CTA analysis
        never exceeds the exact self-timed throughput of the equivalent SDF
        graph with the same buffer capacities."""
        wcet = Fraction(1, 100)
        source = (
            "mod seq P(int i, out int o){ loop{ work(i, out o); } while(1); }\n"
            "mod par Top(){ fifo int a, b; Feed(out a) || P(a, out b) || Drain(b) }\n"
            "mod seq Feed(out int o){ loop{ feed(out o); } while(1); }\n"
            "mod seq Drain(int i){ loop{ drain(i); } while(1); }\n"
        )
        result = compile_program(
            source, function_wcets={"work": wcet, "feed": wcet, "drain": wcet}
        )
        sizing = result.size_buffers()
        consistency = sizing.consistency
        rates = [r for r in consistency.port_rates.values() if r is not None]
        assert rates
        cta_rate = max(rates)

        from repro.dataflow import SDFGraph

        graph = SDFGraph("pipeline")
        for name in ("feed", "work", "drain"):
            graph.add_actor(name, firing_duration=wcet)
        capacity = max(sizing.capacities.values())
        graph.add_buffer("a", "feed", "work", capacity=capacity)
        graph.add_buffer("b", "work", "drain", capacity=capacity)
        exact = sdf_throughput(graph)
        assert exact.actor_throughput["work"] >= cta_rate or exact.iteration_period is None
