"""Tests for the constraint-graph algorithms (Bellman-Ford, cycle ratios)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.util.graphs import (
    ConstraintGraph,
    detect_positive_cycle,
    longest_path_offsets,
    maximum_cycle_ratio,
    minimum_cycle_ratio,
    simple_cycles,
)


def chain_graph():
    g = ConstraintGraph()
    g.add_edge("a", "b", 2)
    g.add_edge("b", "c", 3)
    return g


class TestLongestPaths:
    def test_acyclic_offsets(self):
        offsets = longest_path_offsets(chain_graph())
        assert offsets["a"] == 0
        assert offsets["b"] == 2
        assert offsets["c"] == 5

    def test_negative_cycle_is_feasible(self):
        g = chain_graph()
        g.add_edge("c", "a", -10)
        result = detect_positive_cycle(g)
        assert result.feasible

    def test_zero_cycle_is_feasible(self):
        g = chain_graph()
        g.add_edge("c", "a", -5)
        assert detect_positive_cycle(g).feasible

    def test_positive_cycle_detected(self):
        g = chain_graph()
        g.add_edge("c", "a", -4)  # total +1
        result = detect_positive_cycle(g)
        assert result.has_positive_cycle
        assert len(result.cycle) == 3

    def test_positive_cycle_raises_in_offsets(self):
        g = chain_graph()
        g.add_edge("c", "a", 0)
        with pytest.raises(ValueError):
            longest_path_offsets(g)

    def test_offsets_satisfy_constraints(self):
        g = ConstraintGraph()
        g.add_edge("a", "b", Fraction(1, 3))
        g.add_edge("a", "c", Fraction(5, 7))
        g.add_edge("c", "b", Fraction(-1, 2))
        g.add_edge("b", "d", Fraction(2))
        offsets = longest_path_offsets(g)
        for edge in g.edges:
            assert offsets[edge.target] >= offsets[edge.source] + edge.weight

    def test_custom_evaluator(self):
        g = chain_graph()
        g.add_edge("c", "a", 0)
        # With the raw weights the cycle a->b->c->a is positive; an evaluator
        # shifting every edge by -2 makes the cycle total 5 - 6 < 0.
        assert g.longest_paths().has_positive_cycle
        result = g.longest_paths(evaluate=lambda e: e.weight - 2)
        assert result.feasible


class TestCycleRatios:
    def test_single_cycle_ratio(self):
        g = ConstraintGraph()
        g.add_edge("a", "b", 3, parametric=1)
        g.add_edge("b", "a", 2, parametric=1)
        result = maximum_cycle_ratio(g)
        assert result.ratio == Fraction(5, 2)

    def test_two_cycles_max(self):
        g = ConstraintGraph()
        g.add_edge("a", "b", 3, parametric=1)
        g.add_edge("b", "a", 3, parametric=1)  # ratio 3
        g.add_edge("a", "c", 10, parametric=1)
        g.add_edge("c", "a", 0, parametric=4)  # ratio 2
        assert maximum_cycle_ratio(g).ratio == 3

    def test_min_cycle_ratio(self):
        g = ConstraintGraph()
        g.add_edge("a", "b", 3, parametric=1)
        g.add_edge("b", "a", 3, parametric=1)  # ratio 3
        g.add_edge("a", "c", 10, parametric=1)
        g.add_edge("c", "a", 0, parametric=4)  # ratio 2
        assert minimum_cycle_ratio(g).ratio == 2

    def test_unbounded_ratio(self):
        g = ConstraintGraph()
        g.add_edge("a", "b", 1, parametric=0)
        g.add_edge("b", "a", 1, parametric=0)
        result = maximum_cycle_ratio(g)
        assert result.unbounded
        assert result.ratio is None

    def test_no_cycles(self):
        g = chain_graph()
        result = maximum_cycle_ratio(g)
        assert result.ratio is None
        assert not result.unbounded

    def test_negative_parametric_rejected(self):
        g = ConstraintGraph()
        g.add_edge("a", "b", 1, parametric=-1)
        with pytest.raises(ValueError):
            maximum_cycle_ratio(g)

    def test_ratio_with_exact_fractions(self):
        g = ConstraintGraph()
        g.add_edge("a", "b", Fraction(1, 3), parametric=Fraction(1, 7))
        g.add_edge("b", "a", Fraction(1, 5), parametric=Fraction(2, 7))
        expected = (Fraction(1, 3) + Fraction(1, 5)) / (Fraction(3, 7))
        assert maximum_cycle_ratio(g).ratio == expected


class TestSimpleCycles:
    def test_enumeration(self):
        g = ConstraintGraph()
        g.add_edge("a", "b", 1)
        g.add_edge("b", "a", 1)
        g.add_edge("b", "c", 1)
        g.add_edge("c", "b", 1)
        cycles = simple_cycles(g)
        assert len(cycles) == 2

    def test_self_loop(self):
        g = ConstraintGraph()
        g.add_edge("a", "a", 1)
        assert len(simple_cycles(g)) == 1


@st.composite
def random_ring(draw):
    n = draw(st.integers(2, 6))
    weights = [draw(st.integers(-5, 5)) for _ in range(n)]
    tokens = [draw(st.integers(0, 3)) for _ in range(n)]
    return weights, tokens


@given(random_ring())
@settings(max_examples=60, deadline=None)
def test_max_cycle_ratio_matches_bruteforce_on_ring(data):
    weights, tokens = data
    if sum(tokens) == 0:
        tokens[0] = 1
    g = ConstraintGraph()
    n = len(weights)
    for i in range(n):
        g.add_edge(f"n{i}", f"n{(i + 1) % n}", weights[i], parametric=tokens[i])
    # A ring has exactly one simple cycle: the ratio is directly computable.
    expected = Fraction(sum(weights), sum(tokens))
    assert maximum_cycle_ratio(g).ratio == expected


@given(
    st.lists(st.tuples(st.integers(0, 4), st.integers(0, 4), st.integers(-4, 4)), min_size=1, max_size=14)
)
@settings(max_examples=60, deadline=None)
def test_bellman_ford_agrees_with_cycle_enumeration(edges):
    g = ConstraintGraph()
    for src, dst, weight in edges:
        g.add_edge(f"n{src}", f"n{dst}", weight)
    has_positive = any(
        sum(e.weight for e in cycle) > 0 for cycle in simple_cycles(g)
    )
    assert detect_positive_cycle(g).has_positive_cycle == has_positive
