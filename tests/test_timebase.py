"""Tests for the integer-tick event-queue time base.

The load-bearing guarantee: a tick-based run is *observationally identical*
to a fraction-based run -- every timestamp that leaves the runtime (traces,
makespans, violation instants) round-trips through the tick count to the
exact :class:`~fractions.Fraction` the legacy queue would have computed.
Tick mode may only change how fast the queue compares timestamps, never what
they are.
"""

from fractions import Fraction

import pytest

from repro.api import Program
from repro.engine import ring_program, run_tasks
from repro.runtime.events import EventQueue
from repro.runtime.tasks import OilRuntimeError
from repro.util.rational import TimeBase, TimeBaseError


def assert_traces_identical(a, b):
    assert a.firings == b.firings
    assert a.endpoint_events == b.endpoint_events
    assert a.violations == b.violations
    assert a.buffer_high_water == b.buffer_high_water


# ---------------------------------------------------------------------------
# TimeBase arithmetic
# ---------------------------------------------------------------------------

class TestTimeBase:
    def test_resolution_is_gcd_of_durations(self):
        tb = TimeBase.for_durations([Fraction(1, 6_400_000), Fraction(1, 32_000)])
        # 6.4 MHz and 32 kHz periods: the grid is the finer period.
        assert tb is not None
        assert tb.resolution == Fraction(1, 6_400_000)
        tb = TimeBase.for_durations([Fraction(3, 1000), Fraction(1, 500)])
        assert tb.resolution == Fraction(1, 1000)

    def test_round_trip_is_exact(self):
        tb = TimeBase(Fraction(1, 6_400_000))
        for value in (Fraction(0), Fraction(1, 32_000), Fraction(7, 800), Fraction(5)):
            ticks = tb.to_ticks(value)
            assert isinstance(ticks, int)
            assert tb.to_time(ticks) == value

    def test_off_grid_time_raises(self):
        tb = TimeBase(Fraction(1, 1000))
        with pytest.raises(TimeBaseError):
            tb.to_ticks(Fraction(1, 3000))
        assert tb.try_ticks(Fraction(1, 3000)) is None
        assert tb.try_ticks(Fraction(2, 1000)) == 2

    def test_ticks_floor(self):
        tb = TimeBase(Fraction(1, 1000))
        assert tb.ticks_floor(Fraction(1, 3)) == 333
        assert tb.ticks_floor(Fraction(2, 1000)) == 2

    def test_zero_durations_yield_no_base(self):
        assert TimeBase.for_durations([]) is None
        assert TimeBase.for_durations([0, Fraction(0)]) is None

    def test_zero_durations_are_skipped_not_fatal(self):
        tb = TimeBase.for_durations([0, Fraction(1, 4)])
        assert tb.resolution == Fraction(1, 4)

    def test_denominator_cap_falls_back(self):
        huge = Fraction(1, 10**19)
        assert TimeBase.for_durations([huge]) is None
        assert TimeBase.for_durations([huge], max_denominator=None) is not None

    def test_invalid_resolution_rejected(self):
        with pytest.raises(ValueError):
            TimeBase(0)
        with pytest.raises(ValueError):
            TimeBase(Fraction(-1, 2))


# ---------------------------------------------------------------------------
# Tick-based event queue
# ---------------------------------------------------------------------------

class TestTickEventQueue:
    def test_orders_like_the_fraction_queue(self):
        tb = TimeBase(Fraction(1, 1000))
        results = []
        for queue in (EventQueue(), EventQueue(tb)):
            seen = []
            queue.schedule(Fraction(2, 1000), lambda s=seen: s.append("b"))
            queue.schedule(Fraction(1, 1000), lambda s=seen: s.append("a"))
            queue.schedule(Fraction(1, 1000), lambda s=seen: s.append("a2"))
            queue.run_until(Fraction(1, 100))
            results.append(seen)
        assert results[0] == results[1] == ["a", "a2", "b"]

    def test_rational_inputs_convert_exactly(self):
        queue = EventQueue(TimeBase(Fraction(1, 1000)))
        event = queue.schedule(Fraction(3, 1000), lambda: None)
        assert event.time == 3  # native units: ticks
        with pytest.raises(TimeBaseError):
            queue.schedule(Fraction(1, 3), lambda: None)

    def test_now_time_round_trips(self):
        queue = EventQueue(TimeBase(Fraction(1, 32_000)))
        stamps = []
        queue.schedule(Fraction(5, 32_000), lambda: stamps.append(queue.now_time))
        queue.run_until(Fraction(1))
        assert stamps == [Fraction(5, 32_000)]
        assert queue.now == 32_000  # ticks
        assert queue.now_time == Fraction(1)

    def test_run_until_floors_off_grid_horizons(self):
        queue = EventQueue(TimeBase(Fraction(1, 1000)))
        queue.run_until(Fraction(1, 3))
        assert queue.now == 333
        assert queue.now_time == Fraction(333, 1000)

    def test_timebase_fixed_once_history_exists(self):
        queue = EventQueue()
        queue.run_until(Fraction(1))
        with pytest.raises(ValueError):
            queue.set_timebase(TimeBase(Fraction(1, 10)))

    def test_schedule_after_accepts_ticks_and_rationals(self):
        queue = EventQueue(TimeBase(Fraction(1, 100)))
        seen = []
        queue.schedule_after(3, lambda: seen.append(queue.now))
        queue.schedule_after(Fraction(5, 100), lambda: seen.append(queue.now))
        queue.run_until(Fraction(1))
        assert seen == [3, 5]


# ---------------------------------------------------------------------------
# Round-trip exactness on incommensurable periodic chains (property-style)
# ---------------------------------------------------------------------------

class TestPeriodicRoundTrip:
    """Two periodic chains with incommensurable periods produce timestamp
    streams whose interleaving is extremely sensitive to comparison
    exactness; the tick queue must reproduce the fraction queue's stream
    bit-for-bit."""

    @pytest.mark.parametrize(
        "period_a,period_b",
        [
            (Fraction(1, 6_400_000), Fraction(1, 32_000)),  # the paper's clocks
            (Fraction(1, 3), Fraction(1, 7)),
            (Fraction(3, 1000), Fraction(7, 10_000)),
            (Fraction(1, 44_100), Fraction(1, 48_000)),
        ],
    )
    def test_interleaving_identical(self, period_a, period_b):
        def stream(queue):
            stamps = []

            def tick_a():
                stamps.append(("a", queue.now_time))
                queue.schedule(queue.now + queue.to_internal(period_a), tick_a)

            def tick_b():
                stamps.append(("b", queue.now_time))
                queue.schedule(queue.now + queue.to_internal(period_b), tick_b)

            queue.schedule(queue.to_internal(Fraction(0)), tick_a)
            queue.schedule(queue.to_internal(Fraction(0)), tick_b)
            queue.run_until(period_a * 200, max_events=400)
            return stamps

        fraction_stream = stream(EventQueue())
        tick_queue = EventQueue(TimeBase.for_durations([period_a, period_b]))
        assert tick_queue.timebase is not None
        tick_stream = stream(tick_queue)
        assert tick_stream == fraction_stream
        assert all(isinstance(time, Fraction) for _, time in tick_stream)


# ---------------------------------------------------------------------------
# Simulation-level equivalence: every app, tick vs fraction
# ---------------------------------------------------------------------------

APP_CASES = [
    ("quickstart", {}, Fraction(1, 20)),
    ("rate_converter", {}, Fraction(1, 10)),
    ("pal_decoder", {"scale": 1000}, Fraction(1, 20)),
    ("modal_two_mode", {}, Fraction(1, 20)),
]


class TestSimulationEquivalence:
    @pytest.mark.parametrize("app,params,duration", APP_CASES, ids=[c[0] for c in APP_CASES])
    def test_traces_bit_identical_across_time_bases(self, app, params, duration):
        analysis = Program.from_app(app, **params).analyze()
        fraction_run = analysis.run(duration, time_base="fraction")
        tick_run = analysis.run(duration, time_base="ticks")
        assert fraction_run.time_base == "fraction"
        assert tick_run.time_base == "ticks"
        assert len(tick_run.trace.firings) > 0
        assert_traces_identical(tick_run.trace, fraction_run.trace)
        assert tick_run.makespan == fraction_run.makespan
        assert tick_run.sink_counts == fraction_run.sink_counts
        for name in tick_run.sink_counts:
            assert tick_run.sink(name) == fraction_run.sink(name)

    def test_full_rate_pal_clocks(self):
        # The paper's unscaled clocks: a 6.4 MHz RF source against 32 kHz
        # audio.  One video line of simulated time is enough to interleave
        # thousands of source ticks between audio instants.
        analysis = Program.from_app("pal_decoder", scale=1).analyze()
        duration = Fraction(1, 2_000)
        fraction_run = analysis.run(duration, time_base="fraction")
        tick_run = analysis.run(duration, time_base="ticks")
        assert tick_run.simulation.time_base.resolution <= Fraction(1, 6_400_000)
        assert len(tick_run.trace.endpoint_events) > 1000
        assert_traces_identical(tick_run.trace, fraction_run.trace)

    def test_engine_run_tasks_equivalence(self):
        a = run_tasks(ring_program(40, tokens=4, stagger=5), stop_after_firings=300,
                      time_base="fraction")
        b = run_tasks(ring_program(40, tokens=4, stagger=5), stop_after_firings=300,
                      time_base="ticks")
        assert b.queue.timebase is not None
        assert_traces_identical(a.trace, b.trace)
        assert a.makespan == b.makespan


# ---------------------------------------------------------------------------
# Fraction fallback path
# ---------------------------------------------------------------------------

class TestFractionFallback:
    def test_explicit_fraction_mode(self):
        run = Program.from_app("quickstart").analyze().run(
            Fraction(1, 50), time_base="fraction"
        )
        assert run.time_base == "fraction"
        assert run.simulation.queue.timebase is None
        assert run.deadline_misses == 0

    def test_auto_falls_back_when_resolution_explodes(self):
        # A sink start offset with a denominator beyond the tick cap: the
        # gcd resolution would make every timestamp a huge integer, so the
        # simulation keeps exact fractions -- transparently.
        analysis = Program.from_app("quickstart").analyze()
        offset = {"averages": Fraction(1, 10**19)}
        run = analysis.run(Fraction(1, 50), sink_start_times=offset)
        assert run.time_base == "fraction"
        # forcing ticks on the same program is a loud error instead
        with pytest.raises(OilRuntimeError):
            analysis.run(Fraction(1, 50), sink_start_times=offset, time_base="ticks")

    def test_fallback_trace_matches_tick_trace(self):
        analysis = Program.from_app("rate_converter").analyze()
        tick_run = analysis.run(Fraction(1, 10))  # auto -> ticks
        fallback_run = analysis.run(Fraction(1, 10), time_base="fraction")
        assert tick_run.time_base == "ticks"
        assert fallback_run.time_base == "fraction"
        assert_traces_identical(tick_run.trace, fallback_run.trace)

    def test_run_tasks_fallback_without_positive_wcets(self):
        tasks = ring_program(10, tokens=2, wcet=0)
        run = run_tasks(tasks, stop_after_firings=20)  # auto
        assert run.queue.timebase is None
        assert run.engine.completed_firings >= 20
        with pytest.raises(TimeBaseError):
            run_tasks(ring_program(10, tokens=2, wcet=0), time_base="ticks")

    def test_unknown_time_base_rejected(self):
        with pytest.raises(ValueError):
            run_tasks(ring_program(10, tokens=2), time_base="nanoseconds")
        with pytest.raises(OilRuntimeError):
            Program.from_app("quickstart").analyze().run(
                Fraction(1, 100), time_base="nanoseconds"
            )

    def test_explicit_timebase_instance_validated(self):
        analysis = Program.from_app("quickstart").analyze()
        # 2 kHz source, 1 kHz sink (half period 1/2000), wcet 3/10000:
        # 1/10000 covers everything.
        run = analysis.run(Fraction(1, 50), time_base=TimeBase(Fraction(1, 10_000)))
        assert run.time_base == "ticks"
        with pytest.raises(OilRuntimeError):
            analysis.run(Fraction(1, 50), time_base=TimeBase(Fraction(1, 3)))


# ---------------------------------------------------------------------------
# Sweeping the time base as a run axis
# ---------------------------------------------------------------------------

class TestTimeBaseSweep:
    def test_time_base_is_a_run_axis(self):
        from repro.api import Sweep

        report = (
            Sweep("quickstart", duration=Fraction(1, 50))
            .add_axis("time_base", ["fraction", "ticks"])
            .run()
        )
        assert report.ok
        assert report.column("time_base") == ["fraction", "ticks"]
        rows = report.rows()
        # identical observable metrics, whatever the representation
        for key in ("deadline_misses", "completed_firings", "makespan"):
            assert rows[0][key] == rows[1][key]
