"""Tests for CTA buffer sizing."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.cta import BufferParameter, CTAModel, check_consistency, size_buffers
from repro.cta.buffer_sizing import BufferSizingError


def pipeline_model(stages: int, *, wcet=Fraction(1, 100), sink_rate=20):
    """A linear pipeline of *stages* tasks with a sized buffer between each."""
    model = CTAModel("pipeline")
    tasks = []
    for index in range(stages):
        task = model.new_component(f"t{index}", kind="task")
        task.add_port("in", direction="in", fixed_rate=sink_rate if index == stages - 1 else None)
        task.add_port("out", direction="out")
        task.connect(task.port_ref("in"), task.port_ref("out"), epsilon=wcet, purpose="firing")
        tasks.append(task)
    buffers = []
    for left, right in zip(tasks, tasks[1:]):
        buffer = BufferParameter(f"b_{left.name}_{right.name}", minimum=1)
        buffers.append(buffer)
        model.connect(left.port_ref("out"), right.port_ref("in"), purpose="buffer-data")
        model.connect(right.port_ref("out"), left.port_ref("in"), buffer=buffer, purpose="buffer")
    return model, buffers


class TestSizing:
    def test_pipeline_becomes_consistent(self):
        model, buffers = pipeline_model(3)
        result = size_buffers(model)
        assert result.consistency.consistent
        assert all(b.value is not None for b in buffers)

    def test_capacities_sufficient_for_rate(self):
        model, _ = pipeline_model(2, wcet=Fraction(1, 25), sink_rate=20)
        result = size_buffers(model)
        # Each stage needs 1/25 s; at 20 Hz the slack per period is 1/20 s,
        # so a single-token buffer is not enough for both cycles.
        assert result.consistency.consistent
        assert result.total_capacity >= 2

    def test_minimize_reduces_capacity(self):
        model, buffers = pipeline_model(2)
        unminimized = size_buffers(model, minimize=False)
        for buffer in buffers:
            buffer.value = None
        model2, buffers2 = pipeline_model(2)
        minimized = size_buffers(model2, minimize=True)
        assert minimized.total_capacity <= unminimized.total_capacity

    def test_sized_model_is_checkable(self):
        model, _ = pipeline_model(2)
        size_buffers(model)
        assert check_consistency(model).consistent

    def test_infeasible_rates_raise(self):
        # Processing slower than the required period and no buffer on the
        # critical (firing-only) cycle: no capacity can help.
        model = CTAModel("m")
        a = model.new_component("a")
        a.add_port("in", fixed_rate=10)
        a.add_port("out")
        a.connect(a.port_ref("in"), a.port_ref("out"), epsilon=Fraction(1, 2), purpose="firing")
        a.connect(a.port_ref("out"), a.port_ref("in"), epsilon=0, phi=-1, purpose="periodicity")
        with pytest.raises(BufferSizingError):
            size_buffers(model)

    def test_monotone_larger_rate_needs_no_smaller_buffers(self):
        totals = []
        for rate in (10, 40, 160):
            model, _ = pipeline_model(2, wcet=Fraction(1, 400), sink_rate=rate)
            totals.append(size_buffers(model).total_capacity)
        assert totals == sorted(totals)


@given(st.integers(2, 4), st.integers(1, 30))
@settings(max_examples=15, deadline=None)
def test_sizing_always_produces_consistent_model(stages, rate):
    model, _ = pipeline_model(stages, wcet=Fraction(1, 1000), sink_rate=rate)
    result = size_buffers(model)
    assert result.consistency.consistent
    # capacities respect the declared minima
    assert all(value >= 1 for value in result.capacities.values())
