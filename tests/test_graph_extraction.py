"""Tests for task-graph extraction and circular buffers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import (
    CircularBuffer,
    extract_task_graph,
    schedule_length,
    static_order_schedule,
    task_graph_to_sdf,
)
from repro.lang import parse_module, parse_program


def module_from(source):
    return parse_module(source)


class TestExtractionBasics:
    def test_one_task_per_statement(self):
        graph = extract_task_graph(
            module_from(
                "mod seq M(sample i, out sample o){ loop{ a(i, out o); } while(1); }"
            )
        )
        assert len(graph.tasks) == 1
        assert len(graph.loops) == 1
        task = graph.tasks["t_a"]
        assert task.loop == "loop0"
        assert task.reads_from("i") == 1
        assert task.writes_to("o") == 1

    def test_guarded_if_else_tasks(self):
        graph = extract_task_graph(
            module_from(
                """
                mod seq M(out int x, int s){
                  int y;
                  loop{
                    if (s > 0) { y = g(); } else { y = h(); }
                    k(y, out x:2);
                  } while(1);
                }
                """
            )
        )
        assert len(graph.tasks) == 3
        guarded = [t for t in graph.tasks.values() if t.guard is not None]
        assert len(guarded) == 2
        # The guarded tasks read the guard variable s (the condition input).
        for task in guarded:
            assert task.reads_from("s") == 1
        buffer_y = graph.buffers["y"]
        assert len(buffer_y.producers) == 2
        assert len(buffer_y.consumers) == 1

    def test_switch_guards(self):
        graph = extract_task_graph(
            module_from(
                """
                mod seq M(int s, out int o){
                  loop{
                    switch(s) case 0 { o = a(); } case 1 { o = b(); } default { o = c(); }
                  } while(1);
                }
                """
            )
        )
        assert len(graph.tasks) == 3
        assert all(t.guard is not None for t in graph.tasks.values())

    def test_init_statements_become_initial_tokens(self):
        graph = extract_task_graph(
            module_from(
                "mod seq B(out int c, int d){ init(out c:4); loop{ g(out c:2, d:2); } while(1); }"
            )
        )
        assert graph.buffers["c"].initial_tokens == 4
        assert graph.streams["c"].initial_values == 4
        init_tasks = graph.initialization_tasks()
        assert len(init_tasks) == 1 and init_tasks[0].loop is None

    def test_two_loops(self):
        graph = extract_task_graph(
            module_from(
                """
                mod seq Two(int x, out int z){
                  int y;
                  loop{ y = f(x); z = p(y); } while(x > 0);
                  loop{ g(x, y, out z); } while(1);
                }
                """
            )
        )
        assert set(graph.loops) == {"loop0", "loop1"}
        assert len(graph.tasks_in_loop("loop0")) == 2
        assert len(graph.tasks_in_loop("loop1")) == 1

    def test_multi_rate_counts(self):
        graph = extract_task_graph(
            module_from(
                "mod seq SRC_V(sample si, out sample so){ loop{ resamp(si:16, out so:10); } while(1); }"
            )
        )
        task = graph.tasks["t_resamp"]
        assert task.reads_from("si") == 16
        assert task.writes_to("so") == 10
        assert graph.streams["si"].per_loop_counts == {"loop0": 16}
        assert graph.streams["so"].per_loop_counts == {"loop0": 10}

    def test_repeated_reads_use_max(self):
        graph = extract_task_graph(
            module_from(
                "mod seq M(int s, out int o){ loop{ if (s > 0) { o = f(s); } else { o = g(); } } while(1); }"
            )
        )
        # f reads s both through the guard and as argument: still one value.
        task = graph.tasks["t_o"]
        assert task.reads_from("s") == 1

    def test_multiple_writers_only_last_visible(self):
        graph = extract_task_graph(
            module_from(
                "mod seq M(int s, out int o){ loop{ if (s>0) { o = f(); } else { o = g(); } } while(1); }"
            )
        )
        assert graph.streams["o"].per_loop_counts == {"loop0": 1}

    def test_firing_durations_assigned(self):
        graph = extract_task_graph(
            module_from("mod seq M(int i, out int o){ loop{ work(i, out o); } while(1); }")
        )
        graph.set_firing_durations({"work": "0.001"})
        assert graph.tasks["t_work"].firing_duration == pytest.approx(0.001)

    def test_nested_loop_in_if_rejected(self):
        module = module_from(
            "mod seq M(int i, out int o){ loop{ if (i>0) { loop{ o = f(); } while(1); } o = g(); } while(1); }"
        )
        with pytest.raises(Exception):
            extract_task_graph(module)


class TestSDFView:
    def test_single_loop_module_view(self):
        program = parse_program(
            "mod seq B(out int c, int d){ init(out c:4); loop{ g(out c:2, d:2); } while(1); }"
        )
        graph = extract_task_graph(program.module("B"))
        sdf = task_graph_to_sdf(graph)
        assert "t_g" in sdf.actors
        # initial tokens carried onto the data edge towards the environment
        data_edges = [e for e in sdf.edges.values() if e.buffer_name == "c"]
        assert any(e.initial_tokens == 4 for e in data_edges)
        assert schedule_length(sdf) >= 1
        assert static_order_schedule(sdf)

    def test_guarded_module_view_is_consistent(self):
        program = parse_program(
            """
            mod seq M(out int x, int s){
              int y;
              loop{
                if (s > 0) { y = g(); } else { y = h(); }
                k(y, out x:2);
              } while(1);
            }
            """
        )
        graph = extract_task_graph(program.module("M"))
        sdf = task_graph_to_sdf(graph)
        schedule = static_order_schedule(sdf)
        assert set(schedule) >= {"t_y", "t_y_2", "t_k"}


class TestCircularBuffer:
    def test_fifo_order_single_producer_consumer(self):
        buffer = CircularBuffer("b", 4)
        buffer.register_producer("p")
        buffer.register_consumer("c")
        buffer.produce("p", [1, 2], 2)
        assert buffer.consume("c", 2) == [1, 2]

    def test_overflow_protection(self):
        buffer = CircularBuffer("b", 2)
        buffer.register_producer("p")
        buffer.register_consumer("c")
        buffer.produce("p", [1, 2], 2)
        assert not buffer.can_produce("p", 1)
        with pytest.raises(ValueError):
            buffer.produce("p", [3], 1)

    def test_underflow_protection(self):
        buffer = CircularBuffer("b", 2)
        buffer.register_producer("p")
        buffer.register_consumer("c")
        assert not buffer.can_consume("c", 1)
        with pytest.raises(ValueError):
            buffer.consume("c", 1)

    def test_initial_values(self):
        buffer = CircularBuffer("b", 4, initial_values=[7, 8])
        buffer.register_consumer("c")
        assert buffer.consume("c", 2) == [7, 8]

    def test_multiple_consumers_see_all_values(self):
        buffer = CircularBuffer("b", 4)
        buffer.register_producer("p")
        buffer.register_consumer("c1")
        buffer.register_consumer("c2")
        buffer.produce("p", [5], 1)
        assert buffer.consume("c1", 1) == [5]
        # space is only released once the slowest consumer is done
        assert buffer.space_available == 3
        assert buffer.consume("c2", 1) == [5]
        assert buffer.space_available == 4

    def test_overlapping_guarded_producers(self):
        # Two producers of the same variable (if/else writers): the one whose
        # guard is false releases without writing, the value of the other wins.
        buffer = CircularBuffer("y", 2)
        buffer.register_producer("t_g")
        buffer.register_producer("t_h")
        buffer.register_consumer("t_k")
        buffer.produce("t_g", [42], 1)       # guard true: writes
        assert not buffer.can_consume("t_k", 1)  # t_h has not released yet
        buffer.produce("t_h", None, 1)       # guard false: release only
        assert buffer.consume("t_k", 1) == [42]

    def test_inactive_producer_ignored(self):
        buffer = CircularBuffer("b", 4)
        buffer.register_producer("mode_a")
        buffer.register_producer("mode_b")
        buffer.register_consumer("c")
        buffer.set_producer_active("mode_b", False)
        buffer.produce("mode_a", [1], 1)
        assert buffer.can_consume("c", 1)
        # Reactivate mode_b at the frontier: it continues seamlessly.
        buffer.advance_producer_to("mode_b", buffer.producer_position("mode_a"))
        buffer.set_producer_active("mode_b", True)
        buffer.set_producer_active("mode_a", False)
        buffer.produce("mode_b", [2], 1)
        assert buffer.consume("c", 2) == [1, 2]

    def test_peek_does_not_consume(self):
        buffer = CircularBuffer("b", 2, initial_values=[3])
        buffer.register_consumer("c")
        assert buffer.peek("c", 1) == [3]
        assert buffer.consume("c", 1) == [3]

    def test_retire_producer_hands_the_prefix_to_the_loop_producer(self):
        # The Fig. 2 init pattern: a one-shot producer writes a 4-value
        # prefix of a stream a loop task continues.  Before retirement the
        # loop producer's window (still at 0) hides the prefix; afterwards
        # the prefix is visible and the loop continues behind it.
        buffer = CircularBuffer("y", 8)
        buffer.register_producer("t_init")
        buffer.register_producer("t_g")
        buffer.register_consumer("t_f")
        buffer.produce("t_init", [0.0] * 4, 4)
        assert not buffer.can_consume("t_f", 1)  # pinned by t_g at 0
        buffer.retire_producer("t_init")
        assert buffer.consume("t_f", 3) == [0.0, 0.0, 0.0]
        buffer.produce("t_g", [5.0, 6.0], 2)     # continues at position 4
        assert buffer.consume("t_f", 3) == [0.0, 5.0, 6.0]

    def test_retire_producer_notifies_token_watchers(self):
        buffer = CircularBuffer("y", 8)
        buffer.register_producer("t_init")
        buffer.register_producer("t_g")
        buffer.register_consumer("t_f")
        woken = []
        buffer.watch_tokens(lambda: woken.append(True))
        buffer.produce("t_init", [1.0], 1)
        assert not woken                          # floor still pinned at 0
        buffer.retire_producer("t_init")
        assert woken                              # retirement moved the floor

    def test_retire_producer_does_not_move_busy_or_ahead_windows(self):
        buffer = CircularBuffer("y", 8)
        buffer.register_producer("t_init")
        buffer.register_producer("ahead")
        buffer.register_consumer("c")
        buffer.produce("ahead", [9.0] * 3, 3)     # already past the prefix
        buffer.produce("t_init", [0.0] * 2, 2)
        buffer.retire_producer("t_init")
        assert buffer.producer_position("ahead") == 3  # untouched

    def test_retire_consumer_releases_space_and_skips_prefix(self):
        buffer = CircularBuffer("b", 4, initial_values=[1, 2, 3, 4])
        buffer.register_consumer("t_init")
        buffer.register_consumer("t_loop")
        buffer.register_producer("p")
        assert buffer.consume("t_init", 2) == [1, 2]
        assert buffer.space_available == 0        # t_loop still holds 1..4
        buffer.retire_consumer("t_init")
        assert buffer.space_available == 2        # t_loop skipped the prefix
        assert buffer.consume("t_loop", 2) == [3, 4]

    def test_retire_scope_protects_unrelated_windows(self):
        # Retirement hands the prefix only to windows of the same module
        # instance; a sink consumer (or another instance's task) sharing the
        # buffer must still observe every token.
        buffer = CircularBuffer("y", 8)
        buffer.register_producer("C/B:t_init")
        buffer.register_producer("C/B:t_g")
        buffer.register_consumer("speakers")      # a sink driver window
        buffer.register_consumer("C/B:t_loop")
        buffer.produce("C/B:t_init", [0.5] * 2, 2)
        buffer.retire_producer("C/B:t_init", scope="C/B:")
        assert buffer.producer_position("C/B:t_g") == 2   # in scope: advanced
        # the sink is out of scope: it still sees (and will consume) the
        # whole prefix rather than being skipped past it
        assert buffer.consumer_position("speakers") == 0
        assert buffer.consume("speakers", 2) == [0.5, 0.5]
        # consumer-side scope: an init reader retires without dragging the
        # out-of-scope sink window along
        b2 = CircularBuffer("s", 4, initial_values=[1, 2, 3, 4])
        b2.register_consumer("C/B:t_init")
        b2.register_consumer("C/B:t_loop")
        b2.register_consumer("speakers")
        assert b2.consume("C/B:t_init", 2) == [1, 2]
        b2.retire_consumer("C/B:t_init", scope="C/B:")
        assert b2.consumer_position("C/B:t_loop") == 2    # in scope: skipped
        assert b2.consume("speakers", 2) == [1, 2]        # out of scope: intact

    def test_capacity_required_positive(self):
        with pytest.raises(ValueError):
            CircularBuffer("b", 0)


@given(st.lists(st.integers(-100, 100), min_size=1, max_size=60), st.integers(1, 8))
@settings(max_examples=50, deadline=None)
def test_circular_buffer_preserves_fifo_order(values, chunk):
    """Whatever the chunking, a single producer/consumer pair observes the
    exact input sequence (FIFO property of the circular buffer)."""
    buffer = CircularBuffer("b", max(chunk * 2, 4))
    buffer.register_producer("p")
    buffer.register_consumer("c")
    received = []
    pending = list(values)
    while pending or buffer.tokens_available:
        wrote = False
        if pending:
            n = min(chunk, len(pending))
            if buffer.can_produce("p", n):
                buffer.produce("p", pending[:n], n)
                pending = pending[n:]
                wrote = True
        if buffer.can_consume("c", 1):
            received.extend(buffer.consume("c", 1))
        elif not wrote and not pending:
            break
    assert received == values
