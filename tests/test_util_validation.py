"""Tests for the argument-validation helpers."""

import pytest

from repro.util.validation import (
    check_identifier,
    check_in,
    check_non_negative,
    check_positive,
    check_type,
    require,
)


def test_require_passes():
    require(True, "never shown")


def test_require_raises():
    with pytest.raises(ValueError, match="broken"):
        require(False, "broken")


def test_check_type_ok():
    assert check_type(3, int, "x") == 3


def test_check_type_tuple():
    assert check_type(3.5, (int, float), "x") == 3.5


def test_check_type_fails():
    with pytest.raises(TypeError, match="x must be int"):
        check_type("3", int, "x")


def test_check_positive():
    assert check_positive(2, "n") == 2
    with pytest.raises(ValueError):
        check_positive(0, "n")


def test_check_non_negative():
    assert check_non_negative(0, "n") == 0
    with pytest.raises(ValueError):
        check_non_negative(-1, "n")


def test_check_in():
    assert check_in("a", {"a", "b"}, "choice") == "a"
    with pytest.raises(ValueError):
        check_in("c", {"a", "b"}, "choice")


def test_check_identifier_ok():
    assert check_identifier("task#3.buffer[x]", "name") == "task#3.buffer[x]"


def test_check_identifier_empty():
    with pytest.raises(ValueError):
        check_identifier("", "name")


def test_check_identifier_bad_chars():
    with pytest.raises(ValueError):
        check_identifier("spaces not allowed", "name")
