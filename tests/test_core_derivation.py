"""Tests for the OIL -> CTA derivation (the paper's Figs. 7, 8, 9, 10)."""

from fractions import Fraction

import pytest

from repro.core import (
    build_source_component,
    build_sink_component,
    build_task_component,
    component_connection_table,
    compile_program,
    derive_sequential_module,
    multi_rate_table,
    task_to_actor,
)
from repro.cta import CTAModel, check_consistency, compute_rate_structure
from repro.graph import extract_task_graph
from repro.graph.taskgraph import Access, Task
from repro.lang import ast, parse_module


def make_task(reads, writes, rho=Fraction(1, 100), name="t"):
    task = Task(name=name, kind="call", function=name, firing_duration=rho)
    task.reads = [Access(b, c) for b, c in reads]
    task.writes = [Access(b, c) for b, c in writes]
    return task


class TestFig7SingleRate:
    def test_ports_and_connections(self):
        """Fig. 7: a task reading bx, by and writing bz gets six ports, input
        coupling with zero delay and firing connections with delay rho."""
        task = make_task([("bx", 1), ("by", 1)], [("bz", 1)], rho=Fraction(3, 1000))
        model = CTAModel("m")
        component = build_task_component(task, model)
        assert set(component.ports) == {
            "bx.take", "bx.give", "by.take", "by.give", "bz.take", "bz.give",
        }
        firing = [c for c in component.connections if c.purpose == "firing"]
        atomic = [c for c in component.connections if c.purpose == "atomic-start"]
        # 3 input ports x 3 output ports firing connections.
        assert len(firing) == 9
        assert all(c.epsilon == Fraction(3, 1000) for c in firing)
        assert all(c.phi == 0 and c.gamma == 1 for c in firing)  # single rate
        # Input coupling: consecutive pairs in both directions.
        assert len(atomic) == 4
        assert all(c.epsilon == 0 and c.phi == 0 for c in atomic)

    def test_max_rate_is_inverse_firing_duration(self):
        task = make_task([("bx", 1)], [("bz", 1)], rho=Fraction(1, 50))
        model = CTAModel("m")
        component = build_task_component(task, model)
        assert component.ports["bx.take"].max_rate == 50

    def test_zero_duration_unbounded_rate(self):
        task = make_task([("bx", 1)], [("bz", 1)], rho=Fraction(0))
        model = CTAModel("m")
        component = build_task_component(task, model)
        assert component.ports["bx.take"].max_rate is None


class TestFig8MultiRate:
    def test_paper_table_exact(self):
        """The (epsilon, phi, gamma) table of Fig. 8c, reproduced exactly."""
        rho = Fraction(7, 1000)
        table = multi_rate_table(4, 2, rho)
        assert table[("p0", "p1")] == (rho, Fraction(3), Fraction(1))
        assert table[("p0", "p2")] == (rho, Fraction(2), Fraction(2, 4))
        assert table[("p0", "p3")] == (Fraction(0), Fraction(0), Fraction(2, 4))
        assert table[("p3", "p0")] == (Fraction(0), Fraction(0), Fraction(4, 2))
        assert table[("p3", "p1")] == (rho, Fraction(3, 2), Fraction(4, 2))
        assert table[("p3", "p2")] == (rho, Fraction(1), Fraction(1))
        assert len(table) == 6

    def test_phi_formula(self):
        """phi = psi - psi/pi for arbitrary rates."""
        table = multi_rate_table(16, 10, Fraction(1, 400))
        eps, phi, gamma = table[("p0", "p2")]
        assert phi == Fraction(16) - Fraction(16, 10)
        assert gamma == Fraction(10, 16)

    def test_actor_abstraction_edges(self):
        task = make_task([("bx", 4)], [("by", 2)])
        actor = task_to_actor(task)
        assert len(actor.input_edges) == 2
        assert len(actor.output_edges) == 2
        roles = {(e.buffer, e.direction, e.role) for e in actor.edges}
        assert ("bx", "in", "data") in roles
        assert ("by", "in", "space") in roles

    def test_table_generalises_to_three_buffers(self):
        task = make_task([("a", 2), ("b", 3)], [("c", 5)], rho=Fraction(1))
        rows = component_connection_table(task_to_actor(task))
        firing = [r for r in rows if r.purpose == "firing"]
        assert len(firing) == 3 * 3  # 3 input ports x 3 output ports
        row = next(r for r in firing if r.src == "a.take" and r.dst == "c.give")
        assert row.gamma == Fraction(5, 2)
        assert row.phi == Fraction(2) - Fraction(2, 5)


class TestFig9SequentialModule:
    def build(self, source, wcets=None):
        module = parse_module(source)
        graph = extract_task_graph(module)
        graph.set_firing_durations(wcets or {}, default=Fraction(1, 10000))
        model = CTAModel("m")
        derived = derive_sequential_module(graph, model)
        return model, derived, graph

    def test_two_loop_topology(self):
        """Fig. 9: two while-loops accessing one stream produce two loop
        components, per-loop access components and periodicity back edges."""
        model, derived, _ = self.build(
            """
            mod seq A(int x, out int z){
              int y;
              loop{ y = f(x); z = p(y); } while(x > 0);
              loop{ g(x, y, out z); } while(1);
            }
            """
        )
        component = derived.component
        assert set(component.children) == {"loop0", "loop1"}
        loop0 = component.child("loop0")
        loop1 = component.child("loop1")
        # Each loop has an access component for stream x and the module has
        # stream ports for both x and z.
        assert any(c.kind == "stream-access" for c in loop0.children.values())
        assert any(c.kind == "stream-access" for c in loop1.children.values())
        assert "x.in" in component.ports and "x.out" in component.ports
        # The module-level periodicity back edge accumulates one period per loop.
        module_path = component.path()
        back = [
            c
            for c in component.connections
            if c.purpose == "periodicity"
            and c.src == component.port_ref("x.out")
            and c.dst == component.port_ref("x.in")
        ]
        assert len(back) == 1
        assert back[0].phi == -2
        # Each loop additionally carries its own one-period back edge.
        for loop in (loop0, loop1):
            loop_back = [
                c
                for c in loop.all_connections()
                if c.src == loop.port_ref("x.out") and c.dst == loop.port_ref("x.in")
            ]
            assert len(loop_back) == 1
            assert loop_back[0].phi == -1

    def test_interfaces_and_buffers(self):
        model, derived, _ = self.build(
            "mod seq SRC_A(sample si, out sample so){ loop{ LPF(si:25, out so); } while(1); }"
        )
        assert set(derived.interfaces) == {"si", "so"}
        assert not derived.interfaces["si"].is_output
        assert derived.interfaces["so"].is_output
        # One distribution buffer per stream access.
        assert any("si.access0" in name for name in derived.buffers)
        assert any("so.access0" in name for name in derived.buffers)

    def test_variable_buffer_connections(self):
        model, derived, graph = self.build(
            """
            mod seq M(int s, out int o){
              int y;
              loop{
                if (s > 0) { y = g(); } else { y = h(); }
                o = k(y);
              } while(1);
            }
            """
        )
        buffer_names = [n for n in derived.buffers if n.endswith("/y")]
        assert len(buffer_names) == 1
        # Both guarded producers are connected to the consumer.
        space_edges = [
            c for c in derived.component.all_connections() if c.purpose == "buffer" and c.buffer is not None and c.buffer.name.endswith("/y")
        ]
        assert len(space_edges) == 2

    def test_rate_conversion_exposed_at_boundary(self):
        """The module boundary ports of SRC_V carry the 10/16 rate ratio."""
        model, derived, _ = self.build(
            "mod seq SRC_V(sample si, out sample so){ loop{ resamp(si:16, out so:10); } while(1); }"
        )
        structure = compute_rate_structure(model)
        si_in = derived.interfaces["si"].entry
        so_out = derived.interfaces["so"].exit
        ratio = structure.relative_rate(so_out) / structure.relative_rate(si_in)
        assert ratio == Fraction(10, 16)

    def test_single_loop_consistent_and_rate_bounded(self):
        model, derived, _ = self.build(
            "mod seq SRC_A(sample si, out sample so){ loop{ LPF(si:25, out so); } while(1); }",
            wcets={"LPF": Fraction(1, 1000)},
        )
        result = check_consistency(model, assume_infinite_unsized=True)
        assert result.consistent
        # Maximal achievable stream rate is bounded by the 25/rho task port cap.
        rate = result.port_rates[derived.interfaces["si"].entry]
        assert rate == 25 * 1000

    def test_initial_tokens_recorded_on_interface(self):
        model, derived, _ = self.build(
            "mod seq B(out int c, int d){ init(out c:4); loop{ g(out c:2, d:2); } while(1); }"
        )
        assert derived.interfaces["c"].initial_tokens == 4


class TestFig10SourcesSinks:
    def test_source_component(self):
        model = CTAModel("m")
        decl = ast.SourceDecl("sample", "rf", "receiveRF", Fraction(6_400_000))
        instance = build_source_component(model, decl)
        component = instance.component
        assert component.kind == "source"
        assert component.ports["out"].fixed_rate == 6_400_000
        (connection,) = component.connections
        assert connection.epsilon == Fraction(1, 6_400_000)

    def test_sink_component(self):
        model = CTAModel("m")
        decl = ast.SinkDecl("sample", "speakers", "sound", Fraction(32_000))
        instance = build_sink_component(model, decl)
        assert instance.component.ports["in"].fixed_rate == 32_000

    def test_program_with_source_sink_and_latency(self):
        """Figs. 6/10: nested parallel modules, 1 kHz source/sink, 5 ms bound."""
        source = """
        mod seq B(int a, out int z){ loop{ fb(a, out z); } while(1); }
        mod seq C(int a, int z, out int b){ loop{ fc(a, z, out b); } while(1); }
        mod par A(int a, out int b){
          fifo int z;
          B(a, out z) || C(a, z, out b)
        }
        mod par D(){
          source int x = src() @ 1 kHz;
          sink int y = snk() @ 1 kHz;
          start x 5 ms before y;
          A(x, out y)
        }
        """
        result = compile_program(
            source, function_wcets={"fb": Fraction(1, 10000), "fc": Fraction(1, 10000)}
        )
        consistency = result.check_consistency(assume_infinite_unsized=True)
        assert consistency.consistent
        # Source and sink both run at 1 kHz.
        assert consistency.port_rates[result.source_ports["x"]] == 1000
        assert consistency.port_rates[result.sink_ports["y"]] == 1000
        # One latency constraint was collected and can be satisfied after sizing.
        assert len(result.latency_constraints) == 1
        sizing = result.size_buffers()
        checks = result.verify_latency(sizing.consistency)
        assert all(check.satisfied for check in checks)

    def test_latency_constraint_too_tight_is_detected(self):
        source = """
        mod seq S(int a, out int b){ loop{ f(a:8, out b); } while(1); }
        mod par D(){
          source int x = src() @ 8 kHz;
          sink int y = snk() @ 1 kHz;
          start x 0 ms before y;
          S(x, out y)
        }
        """
        result = compile_program(source, function_wcets={"f": Fraction(1, 2000)})
        # The sink cannot start at the same instant as the source: the
        # pipeline needs at least one firing duration of slack.
        sized = None
        try:
            sized = result.size_buffers()
        except Exception:
            pass
        if sized is not None:
            assert not sized.consistency.consistent or not all(
                c.satisfied for c in result.verify_latency(sized.consistency)
            )
