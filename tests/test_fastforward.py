"""Steady-state fast-forward and the compiled dispatch kernel.

The contract under test (see :mod:`repro.engine.steady_state`) comes in two
strengths.  With ``fast_forward=True`` (timing-exact mode) every
timing-derived quantity -- trace records, completion counters, makespan,
deadline misses, measured rates, busy accounting -- is *exactly* equal to a
naive run, while whole periods of the steady-state regime are skipped in
O(1); data values are replayed from the canonical period, so full value
equality additionally requires constant stimuli and stateless actor
functions.  With ``fast_forward="auto"`` (the default, value-exact mode) a
program whose stimuli are declared value-periodic and whose functions
declare jump-exact behaviour produces *bit-identical sink values* through a
jump -- the detector folds every value state into its periodicity key --
and everything else silently falls back to naive stepping.  The compiled
kernel must be observationally invisible: bit-identical traces with
``kernel="on"`` and ``"off"``.
"""

import itertools
from dataclasses import replace
from fractions import Fraction

import pytest

from repro.api import Program
from repro.api.sweep import Sweep
from repro.apps.producer_consumer import QUICKSTART_OIL_SOURCE, quickstart_wcets
from repro.apps.rate_converter import fig2_task_graph
from repro.dataflow import repetition_vector, self_timed_statespace
from repro.engine.dispatcher import run_tasks
from repro.engine.policies import BoundedProcessors, SelfTimedUnbounded, StaticOrder
from repro.engine.synthetic import fork_join_program, ring_program, tasks_from_sdf
from repro.platform.model import Platform
from repro.platform.policies import FixedPriorityPreemptive, ListScheduledPlatform
from repro.runtime.functions import FunctionRegistry
from repro.runtime.sources import ConstantStimulus, PeriodicStimulus
from repro.runtime.trace import TraceRecorder
from repro.util.runwarnings import warning_code


def assert_traces_identical(a, b):
    assert a.firings == b.firings
    assert a.endpoint_events == b.endpoint_events
    assert a.violations == b.violations
    assert a.buffer_high_water == b.buffer_high_water


def assert_timing_identical(a, b):
    """Bit-identical timing: everything except the replayed data values."""
    assert a.firings == b.firings
    assert a.violations == b.violations
    assert [replace(e, value=None) for e in a.endpoint_events] == [
        replace(e, value=None) for e in b.endpoint_events
    ]
    assert a.buffer_high_water == b.buffer_high_water


APPS = ["quickstart", "pal_decoder", "rate_converter", "modal_mute", "modal_two_mode"]
#: apps whose actor functions are stateless, so under legacy timing-exact
#: mode even the *values* survive a jump with constant stimuli (pal_decoder /
#: modal_two_mode carry oscillator and filter state outside the execution
#: state -- legacy replay leaves their values periodic-stale)
STATELESS_APPS = ["quickstart", "rate_converter", "modal_mute"]
#: apps the value-exact detector can jump with bit-identical sink values:
#: every stimulus declared value-periodic, every stateful function exposing
#: get_state/set_state.  rate_converter is absent because its ``f`` emits an
#: ever-growing value stream -- no value period exists, so ``"auto"`` falls
#: back to naive stepping (silently; see TestValueExactAuto).
VALUE_EXACT_APPS = ["quickstart", "pal_decoder", "modal_mute", "modal_two_mode"]


def _constant_signals(app):
    names = list(Program.from_app(app).analyze().compilation.source_ports)
    return {name: ConstantStimulus(1.0) for name in names}


def assert_sink_values_identical(naive, ff):
    for name in naive.simulation.sinks:
        assert naive.simulation.sinks[name].consumed == ff.simulation.sinks[name].consumed, name


# ---------------------------------------------------------------------------
# Engine-level fast-forward (run_tasks)
# ---------------------------------------------------------------------------

class TestEngineFastForward:
    def test_ring_long_horizon_exact(self):
        horizon = Fraction(100)
        naive = run_tasks(ring_program(20, tokens=3, stagger=3), horizon=horizon)
        ff = run_tasks(
            ring_program(20, tokens=3, stagger=3), horizon=horizon, fast_forward=True
        )
        steady = ff.engine.steady_state
        assert ff.fast_forwarded and steady.jumps >= 1
        assert steady.skipped_events > 0
        assert ff.engine.completed_firings == naive.engine.completed_firings
        assert ff.makespan == naive.makespan
        # processed is replayed through jumps, so it matches naive exactly;
        # the actually executed events are the difference
        assert ff.queue.processed == naive.queue.processed
        assert steady.skipped_events < naive.queue.processed
        assert_traces_identical(naive.trace, ff.trace)

    def test_short_horizon_is_bit_identical_without_jumps(self):
        # A horizon inside the transient: the detector is armed but never
        # jumps, and the run is trivially bit-identical.
        naive = run_tasks(ring_program(20, tokens=3), horizon=Fraction(1, 500))
        ff = run_tasks(
            ring_program(20, tokens=3), horizon=Fraction(1, 500), fast_forward=True
        )
        assert not ff.fast_forwarded
        assert_traces_identical(naive.trace, ff.trace)

    def test_stop_after_firings_halts_at_naive_instant(self):
        naive = run_tasks(ring_program(20, tokens=3), stop_after_firings=5000)
        ff = run_tasks(
            ring_program(20, tokens=3), stop_after_firings=5000, fast_forward=True
        )
        assert ff.fast_forwarded
        assert ff.engine.completed_firings == naive.engine.completed_firings
        assert ff.makespan == naive.makespan
        assert_traces_identical(naive.trace, ff.trace)

    @pytest.mark.parametrize(
        "policy_factory",
        [
            lambda: BoundedProcessors(2),
            lambda: StaticOrder([f"t{i}" for i in range(10)]),
        ],
        ids=["bounded", "static-order"],
    )
    def test_policies_fast_forward_exactly(self, policy_factory):
        horizon = Fraction(50)
        naive = run_tasks(
            ring_program(10, tokens=2), policy=policy_factory(), horizon=horizon
        )
        ff = run_tasks(
            ring_program(10, tokens=2),
            policy=policy_factory(),
            horizon=horizon,
            fast_forward=True,
        )
        assert ff.fast_forwarded
        assert ff.engine.completed_firings == naive.engine.completed_firings
        assert ff.makespan == naive.makespan
        assert_traces_identical(naive.trace, ff.trace)

    def test_platform_policy_fast_forwards_with_busy_accounting(self):
        platform = Platform.homogeneous(2)
        horizon = Fraction(50)
        naive = run_tasks(
            fork_join_program(4), policy=ListScheduledPlatform(platform), horizon=horizon
        )
        ff = run_tasks(
            fork_join_program(4),
            policy=ListScheduledPlatform(Platform.homogeneous(2)),
            horizon=horizon,
            fast_forward=True,
        )
        assert ff.fast_forwarded
        assert ff.engine.completed_firings == naive.engine.completed_firings
        assert ff.engine.processor_busy_time == naive.engine.processor_busy_time
        assert_traces_identical(naive.trace, ff.trace)

    def test_trace_retention_keeps_streaming_counters_exact(self):
        horizon = Fraction(200)
        naive = run_tasks(ring_program(12, tokens=2), horizon=horizon)
        capped = TraceRecorder(level="full", retention=50)
        ff = run_tasks(
            ring_program(12, tokens=2), horizon=horizon, fast_forward=True, trace=capped
        )
        assert ff.fast_forwarded
        assert ff.engine.completed_firings == naive.engine.completed_firings
        # stored records are capped, the totals and per-task counters are not
        assert len(capped.firings) <= 50
        assert capped.firing_total == len(naive.trace.firings)
        for i in range(12):
            key = f"ring:t{i}"
            assert capped.task_firing_count(key) == naive.trace.task_firing_count(key)
            assert capped.task_throughput(key) == naive.trace.task_throughput(key)

    def test_multiple_jumps_across_repeated_horizon_extensions(self):
        tasks = tasks_from_sdf(fig2_task_graph(), iterations=50)
        naive = run_tasks(tasks_from_sdf(fig2_task_graph(), iterations=50), horizon=Fraction(400))
        ff = run_tasks(tasks, horizon=Fraction(400), fast_forward=True)
        assert ff.fast_forwarded
        assert ff.engine.completed_firings == naive.engine.completed_firings
        assert_traces_identical(naive.trace, ff.trace)


# ---------------------------------------------------------------------------
# Compiled dispatch kernel
# ---------------------------------------------------------------------------

class TestCompiledKernel:
    def test_kernel_on_off_bit_identical(self):
        on = run_tasks(ring_program(30, tokens=4, stagger=2), kernel="on",
                       stop_after_firings=2000)
        off = run_tasks(ring_program(30, tokens=4, stagger=2), kernel="off",
                        stop_after_firings=2000)
        assert on.engine.kernel_active and not off.engine.kernel_active
        assert_traces_identical(on.trace, off.trace)

    def test_kernel_with_gating_policy_bit_identical(self):
        on = run_tasks(ring_program(10, tokens=2), policy=BoundedProcessors(2),
                       kernel="on", stop_after_firings=500)
        off = run_tasks(ring_program(10, tokens=2), policy=BoundedProcessors(2),
                        kernel="off", stop_after_firings=500)
        assert on.engine.kernel_active
        assert_traces_identical(on.trace, off.trace)

    def test_kernel_on_raises_when_inapplicable(self):
        with pytest.raises(ValueError):
            run_tasks(
                ring_program(10, tokens=2),
                policy=ListScheduledPlatform(Platform.homogeneous(2)),
                kernel="on",
                stop_after_firings=10,
            )
        with pytest.raises(ValueError):
            run_tasks(ring_program(10, tokens=2), kernel="sometimes")

    def test_kernel_auto_disengages_for_platform_and_fraction_modes(self):
        platform_run = run_tasks(
            ring_program(10, tokens=2),
            policy=ListScheduledPlatform(Platform.homogeneous(2)),
            stop_after_firings=50,
        )
        assert not platform_run.engine.kernel_active
        fraction_run = run_tasks(
            ring_program(10, tokens=2), time_base="fraction", stop_after_firings=50
        )
        assert not fraction_run.engine.kernel_active

    def test_kernel_composes_with_fast_forward(self):
        horizon = Fraction(100)
        reference = run_tasks(ring_program(16, tokens=3), kernel="off", horizon=horizon)
        combined = run_tasks(
            ring_program(16, tokens=3), kernel="on", horizon=horizon, fast_forward=True
        )
        assert combined.fast_forwarded and combined.engine.kernel_active
        assert combined.engine.completed_firings == reference.engine.completed_firings
        assert_traces_identical(reference.trace, combined.trace)


# ---------------------------------------------------------------------------
# Refusals: configurations that must fall back to naive execution
# ---------------------------------------------------------------------------

class TestRefusals:
    def test_speed_migrating_preemptive_policy_refuses(self):
        run = run_tasks(
            ring_program(10, tokens=2),
            policy=FixedPriorityPreemptive(Platform.heterogeneous([1, 2])),
            stop_after_firings=100,
            fast_forward=True,
        )
        assert run.engine.steady_state is None
        assert not run.fast_forwarded
        assert any("refused" in w and "speeds" in w for w in run.warnings)
        assert run.engine.completed_firings == 100

    def test_fraction_time_base_refuses(self):
        run = run_tasks(
            ring_program(10, tokens=2),
            time_base="fraction",
            stop_after_firings=100,
            fast_forward=True,
        )
        assert run.engine.steady_state is None
        assert any("integer-tick" in w for w in run.warnings)

    def test_policy_without_steady_state_key_refuses(self):
        class OpaquePolicy:
            def allow_start(self, task):
                return True

            def on_start(self, task):
                pass

            def on_complete(self, task):
                pass

            def reset(self):
                pass

        run = run_tasks(
            ring_program(10, tokens=2),
            policy=OpaquePolicy(),
            stop_after_firings=100,
            fast_forward=True,
        )
        assert run.engine.steady_state is None
        assert any("steady_state_key" in w for w in run.warnings)

    def test_refused_run_matches_naive(self):
        naive = run_tasks(ring_program(10, tokens=2), time_base="fraction",
                          stop_after_firings=200)
        refused = run_tasks(ring_program(10, tokens=2), time_base="fraction",
                            stop_after_firings=200, fast_forward=True)
        assert_traces_identical(naive.trace, refused.trace)


# ---------------------------------------------------------------------------
# API layer: Simulation / Analysis.run / Sweep
# ---------------------------------------------------------------------------

class TestApiFastForward:
    @pytest.mark.parametrize("app", APPS)
    def test_timing_and_metrics_exact_for_all_apps(self, app):
        duration = Fraction(1, 2)
        naive = Program.from_app(app).analyze().run(
            duration, signals=_constant_signals(app), fast_forward=False
        )
        ff = Program.from_app(app).analyze().run(
            duration, signals=_constant_signals(app), fast_forward=True
        )
        steady = ff.simulation.engine.steady_state
        assert ff.fast_forwarded and steady.jumps >= 1
        assert_timing_identical(naive.trace, ff.trace)
        metrics_naive, metrics_ff = naive.metrics(), ff.metrics()
        assert metrics_naive.pop("fast_forwarded") is False
        assert metrics_ff.pop("fast_forwarded") is True
        assert metrics_naive == metrics_ff
        assert ff.warnings == []

    @pytest.mark.parametrize("app", STATELESS_APPS)
    def test_stateless_apps_reproduce_values_too(self, app):
        duration = Fraction(1, 2)
        naive = Program.from_app(app).analyze().run(
            duration, signals=_constant_signals(app), fast_forward=False
        )
        ff = Program.from_app(app).analyze().run(
            duration, signals=_constant_signals(app), fast_forward=True
        )
        assert ff.fast_forwarded
        assert_traces_identical(naive.trace, ff.trace)
        for sink in naive.simulation.sinks:
            assert naive.sink(sink) == ff.sink(sink)

    @pytest.mark.parametrize("app", APPS)
    def test_default_signal_metrics_exact(self, app):
        # Counting stimuli make values periodic-stale after a jump, but every
        # timing-derived metric must still be exactly the naive one.
        duration = Fraction(1, 2)
        naive = Program.from_app(app).analyze().run(duration, fast_forward=False)
        ff = Program.from_app(app).analyze().run(duration, fast_forward=True)
        metrics_naive, metrics_ff = naive.metrics(), ff.metrics()
        metrics_naive.pop("fast_forwarded")
        metrics_ff.pop("fast_forwarded")
        assert metrics_naive == metrics_ff

    def test_short_horizon_traces_bit_identical_with_default_signals(self):
        # Inside the transient no jump fires, so even counting stimuli give
        # bit-identical traces with fast-forward enabled.
        duration = Fraction(1, 400)
        naive = Program.from_app("quickstart").analyze().run(duration)
        ff = Program.from_app("quickstart").analyze().run(duration, fast_forward=True)
        assert not ff.fast_forwarded
        assert_traces_identical(naive.trace, ff.trace)
        for sink in naive.simulation.sinks:
            assert naive.sink(sink) == ff.sink(sink)

    def test_horizon_keyword_implies_fast_forward(self):
        run = Program.from_app("quickstart").run(horizon=Fraction(20))
        assert run.fast_forwarded
        assert run.duration == Fraction(20)
        explicit = Program.from_app("quickstart").run(
            horizon=Fraction(1, 10), fast_forward=False
        )
        assert explicit.simulation.engine.steady_state is None

    def test_duration_and_horizon_are_exclusive(self):
        analysis = Program.from_app("quickstart").analyze()
        with pytest.raises(TypeError):
            analysis.run(Fraction(1), horizon=Fraction(1))
        with pytest.raises(TypeError):
            analysis.run()

    def test_trace_retention_through_api(self):
        run = Program.from_app("quickstart").analyze().run(
            Fraction(2), fast_forward=True, trace_retention=100
        )
        assert run.fast_forwarded
        assert len(run.trace.firings) <= 100
        naive = Program.from_app("quickstart").analyze().run(Fraction(2))
        assert run.completed_firings == naive.completed_firings
        assert run.sink_counts == naive.sink_counts
        assert run.deadline_misses == naive.deadline_misses

    def test_run_until_sink_count_uses_streaming_counter(self):
        simulation = Program.from_app("quickstart").analyze().simulation(
            fast_forward=True
        )
        simulation.run(Fraction(1, 10))  # arms (and uses) the detector
        simulation.run_until_sink_count("averages", 150, max_time=Fraction(1))
        assert simulation.sinks["averages"].consumed_count >= 150

    def test_refusal_surfaces_in_run_result_and_sweep(self):
        run = Program.from_app("quickstart").analyze().run(
            Fraction(1, 10), fast_forward=True, time_base="fraction"
        )
        assert not run.fast_forwarded
        assert any("refused" in w for w in run.warnings)
        report = (
            Sweep("quickstart", duration=Fraction(1, 10))
            .add_axis("fast_forward", [True])
            .add_axis("time_base", ["fraction"])
            .run()
        )
        assert report.ok
        assert any("refused" in w for w in report.warnings)

    def test_sweep_fast_forward_axis_matches_naive_rows(self):
        report = (
            Sweep("rate_converter", duration=Fraction(1, 2))
            .add_axis("fast_forward", [False, True])
            .run()
        )
        assert report.ok
        rows = report.rows()
        assert rows[0]["fast_forwarded"] is False
        assert rows[1]["fast_forwarded"] is True
        for key, value in rows[0].items():
            if key in ("point", "fast_forward", "fast_forwarded"):
                continue
            assert rows[1][key] == value, key

    def test_sweep_horizon_axis(self):
        report = (
            Sweep("quickstart", duration=Fraction(1, 100))
            .add_axis("horizon", [Fraction(10)])
            .add_axis("trace", ["endpoints"])
            .add_axis("trace_retention", [50])
            .run()
        )
        assert report.ok
        assert report.rows()[0]["fast_forwarded"] is True


# ---------------------------------------------------------------------------
# Value-exact fast-forward (fast_forward="auto", the default)
# ---------------------------------------------------------------------------

class TestValueExactAuto:
    @pytest.mark.parametrize("app", VALUE_EXACT_APPS)
    def test_auto_jump_is_value_exact_with_constant_stimuli(self, app):
        duration = Fraction(1, 2)
        naive = Program.from_app(app).analyze().run(
            duration, signals=_constant_signals(app), fast_forward=False
        )
        ff = Program.from_app(app).analyze().run(
            duration, signals=_constant_signals(app)  # "auto" is the default
        )
        steady = ff.simulation.engine.steady_state
        assert ff.fast_forwarded and steady.value_exact and steady.jumps >= 1
        assert ff.warnings == []
        assert_traces_identical(naive.trace, ff.trace)
        assert_sink_values_identical(naive, ff)

    def test_pal_decoder_million_events_bit_identical(self):
        # Acceptance horizon: >= 1e6 queue events through a value-exact jump.
        # The declared RF stimulus is one exact period of the composite
        # signal (repro.dsp.pal.periodic_composite_stimulus) and every
        # filter/mixer/resampler exposes get_state, so the sink samples of
        # the jumped run are bit-identical to naive.
        duration = Fraction(21)
        analysis = Program.from_app("pal_decoder").analyze()
        ff = analysis.run(duration, trace="off")
        steady = ff.simulation.engine.steady_state
        assert ff.fast_forwarded and steady.value_exact and steady.jumps >= 1
        assert ff.warnings == []
        assert ff.simulation.engine.queue.processed >= 1_000_000
        naive = analysis.run(duration, trace="off", fast_forward=False)
        assert ff.simulation.engine.queue.processed == naive.simulation.engine.queue.processed
        assert_sink_values_identical(naive, ff)

    def test_modal_two_mode_million_events_bit_identical(self):
        # Same acceptance horizon for the mode-switching app: the jump must
        # preserve the mode-schedule position and the ring-buffer rotation
        # of values resident across it.
        duration = Fraction(63)
        analysis = Program.from_app("modal_two_mode").analyze()
        ff = analysis.run(duration, trace="off")
        steady = ff.simulation.engine.steady_state
        assert ff.fast_forwarded and steady.value_exact and steady.jumps >= 1
        assert ff.warnings == []
        assert ff.simulation.engine.queue.processed >= 1_000_000
        naive = analysis.run(duration, trace="off", fast_forward=False)
        assert ff.simulation.engine.queue.processed == naive.simulation.engine.queue.processed
        assert_sink_values_identical(naive, ff)

    def test_aperiodic_declared_stimulus_falls_back_silently(self):
        # The quickstart default signal is a declared ramp: aperiodic, so
        # auto cannot prove a value period -- it steps naively, with *no*
        # warning (the user declared exactly what the stream is).
        duration = Fraction(1, 2)
        naive = Program.from_app("quickstart").analyze().run(
            duration, fast_forward=False
        )
        auto = Program.from_app("quickstart").analyze().run(duration)
        assert not auto.fast_forwarded
        assert auto.warnings == []
        assert_traces_identical(naive.trace, auto.trace)
        assert_sink_values_identical(naive, auto)

    def test_rate_converter_auto_matches_naive_without_value_period(self):
        # rate_converter's ``f`` emits an ever-growing value stream: the
        # detector arms (all declarations are in place) but never observes a
        # repeat, and the run remains naive-identical.
        duration = Fraction(1, 2)
        naive = Program.from_app("rate_converter").analyze().run(
            duration, signals=_constant_signals("rate_converter"), fast_forward=False
        )
        auto = Program.from_app("rate_converter").analyze().run(
            duration, signals=_constant_signals("rate_converter")
        )
        steady = auto.simulation.engine.steady_state
        assert steady is not None and steady.value_exact
        assert not auto.fast_forwarded and auto.warnings == []
        assert_traces_identical(naive.trace, auto.trace)
        assert_sink_values_identical(naive, auto)


class TestRunUntilSinkCountValueExact:
    def test_sink_values_and_halt_instant_match_naive(self):
        count = 30_000
        ff_sim = Program.from_app("modal_two_mode").analyze().simulation(trace="off")
        ff_sim.run_until_sink_count("dac", count, max_time=Fraction(60))
        steady = ff_sim.engine.steady_state
        assert steady is not None and steady.value_exact and steady.jumps >= 1
        naive_sim = Program.from_app("modal_two_mode").analyze().simulation(
            trace="off", fast_forward=False
        )
        naive_sim.run_until_sink_count("dac", count, max_time=Fraction(60))
        # chunked stepping may overshoot the count -- but by the same amount
        # in both runs, because the chunk grid is jump-invariant
        assert ff_sim.sinks["dac"].consumed_count >= count
        # bit-identical values AND the exact naive halt instant
        assert ff_sim.sinks["dac"].consumed == naive_sim.sinks["dac"].consumed
        assert ff_sim.queue.now == naive_sim.queue.now
        assert ff_sim.queue.processed == naive_sim.queue.processed

    def test_sink_target_cleared_after_call(self):
        simulation = Program.from_app("modal_two_mode").analyze().simulation(trace="off")
        simulation.run_until_sink_count("dac", 5_000, max_time=Fraction(30))
        assert simulation.engine.steady_state.sink_target is None


class TestAutoRefusalWarningCodes:
    def test_bare_iterator_source_warns_with_stable_code(self):
        with pytest.warns(DeprecationWarning):
            run = Program.from_app("quickstart").analyze().run(
                Fraction(1, 100), signals={"samples": iter(itertools.count(0.0))}
            )
        assert not run.fast_forwarded
        codes = [warning_code(w) for w in run.warnings]
        assert codes == ["undeclared-source"]
        assert "bare iterator" in run.warnings[0]
        assert "samples" in run.warnings[0]

    def test_undeclared_function_warns_with_stable_code(self):
        def undeclared_registry():
            registry = FunctionRegistry()
            registry.register("average2", lambda pair: sum(pair) / len(pair))
            return registry

        program = Program.from_source(
            QUICKSTART_OIL_SOURCE,
            name="undeclared-quickstart",
            function_wcets=quickstart_wcets(),
            registry=undeclared_registry,
            signals=lambda: {"samples": PeriodicStimulus([1.0, 2.0])},
        )
        run = program.analyze().run(Fraction(1, 100))
        assert not run.fast_forwarded
        codes = [warning_code(w) for w in run.warnings]
        assert codes == ["undeclared-function"]
        assert "average2" in run.warnings[0]
        # the free-text message is still an ordinary string
        assert isinstance(run.warnings[0], str)

    def test_sweep_hoists_warning_codes(self):
        report = (
            Sweep("quickstart", duration=Fraction(1, 100))
            .add_axis("fast_forward", [True])
            .add_axis("time_base", ["fraction"])
            .run()
        )
        assert report.ok
        assert report.warnings
        assert all(warning_code(w) == "fraction-time-base" for w in report.warnings)


# ---------------------------------------------------------------------------
# Cross-check against the offline state-space analysis
# ---------------------------------------------------------------------------

class TestOfflineCrossCheck:
    @pytest.mark.parametrize("graph_factory", [fig2_task_graph], ids=["fig2"])
    def test_online_period_matches_statespace_throughput(self, graph_factory):
        graph = graph_factory()
        offline = self_timed_statespace(graph)
        assert offline.iteration_period is not None and not offline.deadlocked

        run = run_tasks(
            tasks_from_sdf(graph, iterations=64), horizon=Fraction(500),
            fast_forward=True,
        )
        steady = run.engine.steady_state
        assert run.fast_forwarded and steady.period_ticks is not None

        # The online anchor-period spans an integer number of graph
        # iterations, so firings-per-second must agree exactly with the
        # offline periodic phase: period_firings / period_seconds ==
        # sum(repetition vector) / iteration_period.
        q = repetition_vector(graph)
        period_seconds = run.queue.to_time(steady.period_ticks)
        assert (
            Fraction(steady.period_firings) * offline.iteration_period
            == Fraction(q.total_firings()) * period_seconds
        )

    def test_online_transient_is_finite_and_period_positive(self):
        graph = fig2_task_graph()
        run = run_tasks(
            tasks_from_sdf(graph, iterations=64), horizon=Fraction(500),
            fast_forward=True,
        )
        steady = run.engine.steady_state
        assert steady.transient_ticks >= 0
        assert steady.period_ticks > 0
        assert steady.skipped_events > 0
