"""Tests for the packaged applications (Fig. 2, modal pipelines, quickstart)."""

from fractions import Fraction

import pytest

from repro.apps.modal_audio import simulate_mute, simulate_two_mode
from repro.apps.producer_consumer import simulate_quickstart
from repro.apps.rate_converter import (
    FIG2_OIL_SOURCE,
    compare_specifications,
    compile_fig2,
    fig2_oil_source,
    fig2_registry,
    fig2_task_graph,
    minimal_initial_tokens_for_cta,
    sequential_program_text,
    sequential_schedule,
)
from repro.dataflow import repetition_vector, sdf_throughput


class TestFig2RateConverter:
    def test_repetition_vector(self):
        q = repetition_vector(fig2_task_graph())
        assert q.as_dict() == {"tf": 2, "tg": 3}

    def test_sequential_schedule_length(self):
        schedule = sequential_schedule()
        assert len(schedule) == 5
        assert schedule.count("tf") == 2 and schedule.count("tg") == 3

    def test_sequential_program_text_matches_fig2b(self):
        text = sequential_program_text()
        # 5 schedule statements + init + declarations + loop wrapper
        assert text.count("f(out") == 2
        assert text.count("g(out") == 3
        assert "init(" in text and "while(1)" in text

    def test_oil_program_constant_size(self):
        comparison = compare_specifications()
        assert comparison.oil_function_calls == 2
        assert comparison.sequential_statement_count == 6
        assert comparison.reduction_factor == 3.0

    def test_cta_conservatism_vs_exact(self):
        """Self-timed execution needs 4 initial values (the paper's example);
        the strictly periodic CTA abstraction needs a few more."""
        exact = sdf_throughput(fig2_task_graph())
        assert not exact.deadlocked
        minimal = minimal_initial_tokens_for_cta()
        assert minimal > 4
        assert minimal <= 8
        assert not compile_fig2(initial_tokens=4).check_consistency(
            assume_infinite_unsized=True
        ).consistent
        assert compile_fig2(initial_tokens=minimal).check_consistency(
            assume_infinite_unsized=True
        ).consistent

    def test_buffer_sizing_with_sufficient_initial_tokens(self):
        result = compile_fig2(initial_tokens=minimal_initial_tokens_for_cta())
        sizing = result.size_buffers()
        assert sizing.consistency.consistent
        assert all(value >= 1 for value in sizing.capacities.values())

    def test_source_template_validation(self):
        with pytest.raises(ValueError):
            fig2_oil_source(0)
        assert "init(out c:4)" in FIG2_OIL_SOURCE

    def test_registry_functions(self):
        registry = fig2_registry()
        assert registry.call("f", [1.0, 2.0, 3.0]) == [3.0, 5.0, 7.0]
        assert registry.call("g", [2.0, 4.0]) == [3.0, 3.0]
        assert len(registry.call("init")) == 4


class TestFig2SelfTimedExecution:
    """Regression for the Fig. 2 runtime blocker: the one-shot ``init``
    producer window used to pin the produced floor of stream ``c``/``y``
    forever (and hide the initial values from ``tf`` until ``tg`` produced,
    which needed exactly those values) -- the program deadlocked at t=0.
    One-shot window retirement makes the cyclic program self-time."""

    def test_rate_converter_self_times_end_to_end(self):
        from repro.api import Program

        analysis = Program.from_app("rate_converter").analyze()
        assert analysis.consistent
        run = analysis.run(Fraction(1, 10))
        counts = {"t_init": 0, "t_f": 0, "t_g": 0}
        for firing in run.trace.firings:
            name = firing.task.rsplit(":", 1)[-1]
            if name in counts:
                counts[name] += 1
        # the init prefix fires exactly once, then the loop tasks stream on
        assert counts["t_init"] == 1
        assert counts["t_f"] >= 20 and counts["t_g"] >= 30
        # steady-state firing ratio approaches the repetition vector (2, 3)
        ratio = counts["t_g"] / counts["t_f"]
        assert abs(ratio - 1.5) < 0.1
        assert run.occupancy_ok

    def test_execution_consumes_the_init_prefix(self):
        from repro.api import Program

        # Stop right after f's first firing completes (wcet 1/1000): f must
        # have read the init prefix (zeros) and written 2*0+1 = 1.0 values.
        run = Program.from_app("rate_converter").analyze().run(Fraction(3, 2000))
        f_values = run.simulation.buffers["C/x"]._storage
        assert 1.0 in [value for value in f_values if value is not None]

    def test_longer_run_scales_firings(self):
        from repro.api import Program

        program = Program.from_app("rate_converter")
        analysis = program.analyze()
        short = analysis.run(Fraction(1, 100)).completed_firings
        longer = analysis.run(Fraction(1, 50)).completed_firings
        assert longer > short


class TestQuickstartApp:
    def test_analysis(self, quickstart_sized):
        result, sizing = quickstart_sized
        consistency = sizing.consistency
        assert consistency.consistent
        assert consistency.port_rates[result.source_ports["samples"]] == 2000
        assert consistency.port_rates[result.sink_ports["averages"]] == 1000

    def test_latency_constraints_hold(self, quickstart_sized):
        result, sizing = quickstart_sized
        checks = result.verify_latency(sizing.consistency)
        assert len(checks) == 2
        assert all(check.satisfied for check in checks)

    def test_simulation_values_and_rate(self, quickstart_sized):
        result, sizing = quickstart_sized
        simulation, trace = simulate_quickstart(Fraction(1, 5), result=result, sizing=sizing)
        assert trace.deadline_miss_count() == 0
        assert simulation.sinks["averages"].consumed[:4] == [0.5, 2.5, 4.5, 6.5]
        assert trace.measured_rate("averages") == 1000


class TestModalApps:
    def test_mute_modal_behaviour(self, mute_sized):
        result, sizing = mute_sized
        # 40 good samples then 40 bad samples, repeated.
        signal = ([1.0] * 40 + [-1.0] * 40) * 100
        simulation, trace = simulate_mute(Fraction(1, 10), signal, result=result, sizing=sizing)
        speaker = simulation.sinks["speaker"].consumed
        assert trace.deadline_miss_count() == 0
        assert 0.0 in speaker and 1.0 in speaker  # both modes observed
        assert trace.measured_rate("speaker") == 2000

    def test_mute_analysis_rates(self, mute_sized):
        result, sizing = mute_sized
        consistency = sizing.consistency
        assert consistency.port_rates[result.source_ports["mic"]] == 8000
        assert consistency.port_rates[result.sink_ports["speaker"]] == 2000

    @pytest.mark.parametrize(
        "schedule",
        [(("loop0", 1), ("loop1", 1)), (("loop0", 4), ("loop1", 2)), (("loop0", 2), ("loop1", 9))],
        ids=["alternate", "calib-heavy", "process-heavy"],
    )
    def test_two_mode_conservative_under_any_schedule(self, two_mode_sized, schedule):
        result, sizing = two_mode_sized
        simulation, trace = simulate_two_mode(
            Fraction(1, 20), mode_schedule=schedule, result=result, sizing=sizing
        )
        assert trace.deadline_miss_count() == 0
        assert trace.measured_rate("dac") == 2000
        for name, mark in trace.buffer_high_water.items():
            assert mark <= simulation.buffers[name].capacity

    def test_two_mode_modes_visible_in_output(self, two_mode_sized):
        result, sizing = two_mode_sized
        simulation, _ = simulate_two_mode(
            Fraction(1, 25), mode_schedule=(("loop0", 2), ("loop1", 2)), result=result, sizing=sizing
        )
        values = simulation.sinks["dac"].consumed
        assert any(v >= 50 for v in values)   # calibration mode marks its output
        assert any(v < 50 for v in values)    # processing mode
