"""Tests for the SDF substrate: graphs, repetition vectors, deadlock,
HSDF expansion, throughput and the exact state-space baseline."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.dataflow import (
    SDFConsistencyError,
    SDFGraph,
    check_deadlock,
    expansion_statistics,
    hsdf_maximum_cycle_ratio,
    is_consistent,
    iteration_token_balance,
    minimal_buffer_capacities,
    repetition_vector,
    sdf_throughput,
    self_timed_statespace,
    size_sdf_buffers,
    to_hsdf,
)
from repro.apps.rate_converter import fig2_task_graph


class TestGraphConstruction:
    def test_duplicate_actor(self):
        g = SDFGraph()
        g.add_actor("a")
        with pytest.raises(ValueError):
            g.add_actor("a")

    def test_unknown_endpoint(self):
        g = SDFGraph()
        g.add_actor("a")
        with pytest.raises(ValueError):
            g.add_edge("e", "a", "ghost")

    def test_buffer_creates_space_edge(self):
        g = SDFGraph()
        g.add_actor("a")
        g.add_actor("b")
        data, space = g.add_buffer("buf", "a", "b", production=2, consumption=3, capacity=6)
        assert data.initial_tokens == 0
        assert space.initial_tokens == 6
        assert space.producer == "b" and space.consumer == "a"

    def test_buffer_capacity_below_initial_rejected(self):
        g = SDFGraph()
        g.add_actor("a")
        g.add_actor("b")
        with pytest.raises(ValueError):
            g.add_buffer("buf", "a", "b", initial_tokens=4, capacity=2)

    def test_copy_is_independent(self):
        g = fig2_task_graph()
        clone = g.copy()
        clone.add_actor("extra")
        assert "extra" not in g


class TestRepetitionVector:
    def test_fig2_vector(self):
        q = repetition_vector(fig2_task_graph())
        assert q.as_dict() == {"tf": 2, "tg": 3}

    def test_single_rate_graph(self):
        g = SDFGraph()
        g.add_actor("a")
        g.add_actor("b")
        g.add_edge("e", "a", "b")
        assert repetition_vector(g).as_dict() == {"a": 1, "b": 1}

    def test_inconsistent_rates(self):
        g = SDFGraph()
        g.add_actor("a")
        g.add_actor("b")
        g.add_edge("e1", "a", "b", production=2, consumption=1)
        g.add_edge("e2", "a", "b", production=1, consumption=1)
        assert not is_consistent(g)
        with pytest.raises(SDFConsistencyError):
            repetition_vector(g)

    def test_balance_is_zero(self):
        balance = iteration_token_balance(fig2_task_graph())
        assert all(v == 0 for v in balance.values())

    def test_empty_graph(self):
        assert repetition_vector(SDFGraph()).as_dict() == {}


class TestDeadlock:
    def test_fig2_deadlock_free_with_4_tokens(self):
        result = check_deadlock(fig2_task_graph())
        assert result.deadlock_free
        assert len(result.schedule) == 5  # 2 firings of tf + 3 of tg

    def test_deadlock_without_initial_tokens(self):
        g = fig2_task_graph(initial_tokens=0)
        result = check_deadlock(g)
        assert not result.deadlock_free
        assert result.remaining

    def test_deadlock_with_too_few_tokens(self):
        g = fig2_task_graph(initial_tokens=2)
        assert not check_deadlock(g).deadlock_free

    def test_schedule_is_admissible(self):
        graph = fig2_task_graph()
        result = check_deadlock(graph)
        tokens = {name: e.initial_tokens for name, e in graph.edges.items()}
        for firing in result.schedule:
            for e in graph.in_edges(firing):
                tokens[e.name] -= e.consumption
                assert tokens[e.name] >= 0
            for e in graph.out_edges(firing):
                tokens[e.name] += e.production


class TestHSDF:
    def test_expansion_size(self):
        stats = expansion_statistics(fig2_task_graph())
        assert stats.sdf_actors == 2
        assert stats.hsdf_actors == 5  # repetition vector sum

    def test_hsdf_is_single_rate(self):
        hsdf = to_hsdf(fig2_task_graph())
        assert all(e.production == 1 and e.consumption == 1 for e in hsdf.edges.values())

    def test_hsdf_token_preservation(self):
        graph = fig2_task_graph()
        hsdf = to_hsdf(graph)
        original_tokens = sum(e.initial_tokens for e in graph.edges.values())
        expanded_tokens = sum(
            e.initial_tokens for e in hsdf.edges.values() if not e.name.split(".")[-1].startswith("se")
        )
        # every initial token appears at least once in the expansion
        assert expanded_tokens >= original_tokens - 1


class TestThroughput:
    def test_fig2_iteration_period(self):
        result = sdf_throughput(fig2_task_graph(f_duration=1, g_duration=1))
        assert result.iteration_period == 5  # unit firing durations, serialised firings
        assert result.actor_throughput["tf"] == Fraction(2, 5)
        assert result.actor_throughput["tg"] == Fraction(3, 5)

    def test_statespace_matches_mcr_on_fig2(self):
        graph = fig2_task_graph()
        exact = self_timed_statespace(graph)
        mcr = sdf_throughput(graph)
        assert exact.iteration_period == mcr.iteration_period

    def test_deadlocked_graph(self):
        g = fig2_task_graph(initial_tokens=0)
        assert sdf_throughput(g).deadlocked
        assert self_timed_statespace(g).deadlocked

    def test_faster_actor_durations_increase_throughput(self):
        slow = sdf_throughput(fig2_task_graph(f_duration=2, g_duration=2))
        fast = sdf_throughput(fig2_task_graph(f_duration=1, g_duration=1))
        assert fast.actor_throughput["tf"] > slow.actor_throughput["tf"]

    def test_hsdf_mcr_simple_ring(self):
        g = SDFGraph()
        g.add_actor("a", firing_duration=2)
        g.add_actor("b", firing_duration=3)
        g.add_edge("ab", "a", "b")
        g.add_edge("ba", "b", "a", initial_tokens=1)
        assert hsdf_maximum_cycle_ratio(to_hsdf(g)) == 5


class TestOnlinePeriodicityCrossCheck:
    """The engine's online steady-state detector must agree with the exact
    offline state-space split computed by ``self_timed_statespace``."""

    def _steady(self, graph, horizon):
        from repro.engine import run_tasks
        from repro.engine.synthetic import tasks_from_sdf

        run = run_tasks(
            tasks_from_sdf(graph, iterations=64),
            horizon=Fraction(horizon),
            fast_forward=True,
        )
        return run, run.engine.steady_state

    def test_online_period_is_integer_iteration_multiple(self):
        graph = fig2_task_graph()
        offline = self_timed_statespace(graph)
        run, steady = self._steady(graph, 500)
        assert steady.jumps >= 1 and steady.period_ticks is not None
        # The detected anchor period spans a whole number of graph
        # iterations: its span in seconds is an exact integer multiple of
        # the offline iteration period, and its firing count is the same
        # multiple of the repetition-vector total.
        period_seconds = run.queue.to_time(steady.period_ticks)
        multiple = period_seconds / offline.iteration_period
        assert multiple.denominator == 1 and multiple >= 1
        q = repetition_vector(graph)
        assert steady.period_firings == multiple * q.total_firings()

    def test_online_transient_bounded_by_horizon(self):
        graph = fig2_task_graph()
        run, steady = self._steady(graph, 500)
        assert steady.transient_ticks is not None
        # Detection happens strictly inside the naive prefix of the run.
        transient_seconds = run.queue.to_time(steady.transient_ticks)
        assert 0 <= transient_seconds < Fraction(500)

    def test_online_throughput_matches_offline(self):
        graph = fig2_task_graph(f_duration=2, g_duration=3)
        offline = self_timed_statespace(graph)
        run, steady = self._steady(graph, 700)
        assert steady.period_ticks is not None
        period_seconds = run.queue.to_time(steady.period_ticks)
        q = repetition_vector(graph)
        online_period_per_iteration = (
            period_seconds * q.total_firings() / steady.period_firings
        )
        assert online_period_per_iteration == offline.iteration_period


class TestSDFBufferSizing:
    def test_minimal_capacities(self):
        graph = fig2_task_graph()
        minima = minimal_buffer_capacities(_forward_only(graph))
        assert minima["bx"] == 3
        assert minima["by"] == 7  # max(2,3) + 4 initial

    def test_sizing_reaches_requirement(self):
        graph = _forward_only(fig2_task_graph())
        result = size_sdf_buffers(graph, Fraction(10))
        assert result.achieved_iteration_period is not None
        assert result.achieved_iteration_period <= 10

    def test_sizing_monotone_in_requirement(self):
        graph = _forward_only(fig2_task_graph())
        loose = size_sdf_buffers(graph, Fraction(100))
        tight = size_sdf_buffers(_forward_only(fig2_task_graph()), Fraction(6))
        assert tight.total_capacity >= loose.total_capacity


def _forward_only(graph):
    """Strip reverse edges and tag the forward edges as named buffers."""
    g = SDFGraph(graph.name + "_fwd")
    for actor in graph.actors.values():
        g.add_actor(actor.name, firing_duration=actor.firing_duration)
    for edge in graph.edges.values():
        g.add_edge(
            edge.name,
            edge.producer,
            edge.consumer,
            production=edge.production,
            consumption=edge.consumption,
            initial_tokens=edge.initial_tokens,
            buffer_name=edge.name,
        )
    return g


@given(st.integers(1, 5), st.integers(1, 5), st.integers(0, 12))
@settings(max_examples=40, deadline=None)
def test_two_actor_cycle_properties(produce, consume, initial):
    """Repetition vector and deadlock behaviour of a two-actor cycle."""
    g = SDFGraph("prop")
    g.add_actor("p", firing_duration=1)
    g.add_actor("c", firing_duration=1)
    g.add_edge("fwd", "p", "c", production=produce, consumption=consume)
    g.add_edge("bwd", "c", "p", production=consume, consumption=produce, initial_tokens=initial)
    q = repetition_vector(g)
    # Balance: q[p]*produce == q[c]*consume
    assert q["p"] * produce == q["c"] * consume
    result = check_deadlock(g)
    if result.deadlock_free:
        # One iteration returns the token distribution to the initial one, so
        # the schedule contains exactly the repetition vector firings.
        assert len(result.schedule) == q.total_firings()
        assert not sdf_throughput(g).deadlocked
    else:
        # Without enough initial tokens the state-space analysis agrees.
        assert self_timed_statespace(g).deadlocked
