"""Tests for the discrete-event runtime (events, tasks, drivers, simulator)."""

from fractions import Fraction

import pytest

from repro.graph.circular_buffer import CircularBuffer
from repro.graph.taskgraph import Access, Task
from repro.lang import ast
from repro.runtime import (
    EventQueue,
    FunctionRegistry,
    RuntimeTask,
    Simulation,
    SinkDriver,
    SourceDriver,
    TraceRecorder,
    default_registry,
    evaluate_expression,
)
from repro.apps.producer_consumer import compile_quickstart, quickstart_registry


class TestEventQueue:
    def test_ordering(self):
        queue = EventQueue()
        seen = []
        queue.schedule(Fraction(2), lambda: seen.append("b"))
        queue.schedule(Fraction(1), lambda: seen.append("a"))
        queue.schedule(Fraction(1), lambda: seen.append("a2"))
        queue.run_until(Fraction(10))
        assert seen == ["a", "a2", "b"]

    def test_past_scheduling_rejected(self):
        queue = EventQueue()
        queue.schedule(Fraction(1), lambda: queue.schedule(Fraction(0), lambda: None))
        with pytest.raises(ValueError):
            queue.run_until(Fraction(2))

    def test_cancel(self):
        queue = EventQueue()
        seen = []
        event = queue.schedule(Fraction(1), lambda: seen.append("x"))
        queue.cancel(event)
        queue.run_until(Fraction(2))
        assert seen == []

    def test_run_until_advances_time(self):
        queue = EventQueue()
        queue.run_until(Fraction(5))
        assert queue.now == 5

    def test_peek_time_skips_cancelled_and_prunes(self):
        queue = EventQueue()
        events = [queue.schedule(Fraction(i), lambda: None) for i in range(1, 6)]
        for event in events[:3]:
            queue.cancel(event)
        assert queue.peek_time() == Fraction(4)
        # cancelled heads were physically popped, not re-scanned per call
        assert len(queue._heap) == 2
        assert not queue.empty()

    def test_empty_is_true_once_all_events_cancelled(self):
        queue = EventQueue()
        events = [queue.schedule(Fraction(i), lambda: None) for i in range(1, 4)]
        assert not queue.empty()
        for event in events:
            queue.cancel(event)
        assert queue.empty()
        assert queue._heap == []
        assert queue.peek_time() is None


class TestExpressionEvaluator:
    def test_arithmetic(self):
        expr = ast.BinaryOp("+", ast.NumberLiteral(2), ast.BinaryOp("*", ast.VarRef("x"), ast.NumberLiteral(3)))
        assert evaluate_expression(expr, {"x": 4}) == 14

    def test_comparisons_and_logic(self):
        expr = ast.BinaryOp(
            "and",
            ast.BinaryOp(">", ast.VarRef("x"), ast.NumberLiteral(0)),
            ast.UnaryOp("!", ast.BinaryOp("==", ast.VarRef("x"), ast.NumberLiteral(5))),
        )
        assert evaluate_expression(expr, {"x": 3}) is True
        assert evaluate_expression(expr, {"x": 5}) is False

    def test_var_ref_of_list_uses_last(self):
        assert evaluate_expression(ast.VarRef("x"), {"x": [1, 2, 3]}) == 3

    def test_stream_read_returns_list(self):
        assert evaluate_expression(ast.StreamRead("x", 2), {"x": [1, 2]}) == [1, 2]

    def test_function_expression(self):
        registry = default_registry({"double": lambda v: 2 * v})
        expr = ast.FunctionExpr("double", (ast.InArgument(ast.VarRef("x")),))
        assert evaluate_expression(expr, {"x": 21}, registry) == 42

    def test_missing_value(self):
        with pytest.raises(Exception):
            evaluate_expression(ast.VarRef("ghost"), {})


class TestFunctionRegistry:
    def test_register_and_call(self):
        registry = FunctionRegistry()
        registry.register("add", lambda a, b: a + b, wcet="0.001")
        assert registry.call("add", 2, 3) == 5
        assert registry.wcets()["add"] == Fraction(1, 1000)

    def test_decorator(self):
        registry = FunctionRegistry()

        @registry.function(wcet=Fraction(1, 500))
        def triple(value):
            return 3 * value

        assert registry.call("triple", 2) == 6
        assert "triple" in registry

    def test_unknown_function(self):
        with pytest.raises(KeyError):
            FunctionRegistry().get("nope")

    def test_side_effect_check(self):
        registry = FunctionRegistry()
        registry.register("pure", lambda xs: sum(xs))
        assert registry.verify_side_effect_free("pure", [1, 2, 3])

        state = {"calls": 0}

        def impure(xs):
            state["calls"] += 1
            return state["calls"]

        registry.register("impure", impure, side_effect_free=False)
        assert not registry.verify_side_effect_free("impure", [1])


class TestRuntimeTask:
    def make_task(self, guard=None):
        statement = ast.FunctionCall(
            "work",
            (
                ast.InArgument(ast.VarRef("a")),
                ast.OutArgument("b", 1),
            ),
        )
        task = Task(name="t_work", kind="call", statement=statement, function="work", guard=guard)
        task.reads = [Access("a", 1)]
        task.writes = [Access("b", 1)]
        buffers = {"a": CircularBuffer("a", 4), "b": CircularBuffer("b", 4)}
        registry = FunctionRegistry()
        registry.register("work", lambda value: value + 100)
        runtime = RuntimeTask(
            name="t_work", task=task, instance="inst", registry=registry, buffers=buffers
        )
        buffers["a"].register_consumer(runtime.producer_key())
        buffers["a"].register_producer("env")
        buffers["b"].register_producer(runtime.producer_key())
        buffers["b"].register_consumer("env")
        return runtime, buffers

    def test_fire_executes_function(self):
        runtime, buffers = self.make_task()
        buffers["a"].produce("env", [1], 1)
        assert runtime.can_fire()
        values = runtime.start_firing()
        assert runtime.busy
        executed = runtime.finish_firing(values)
        assert executed
        assert buffers["b"].consume("env", 1) == [101]

    def test_guard_false_releases_without_writing(self):
        guard = ast.BinaryOp(">", ast.VarRef("a"), ast.NumberLiteral(10))
        runtime, buffers = self.make_task(guard=guard)
        buffers["a"].produce("env", [1], 1)
        values = runtime.start_firing()
        executed = runtime.finish_firing(values)
        assert not executed
        # A token is released (the consumer can advance) but holds no new value.
        assert buffers["b"].can_consume("env", 1)

    def test_cannot_fire_without_input(self):
        runtime, _ = self.make_task()
        assert not runtime.can_fire()

    def test_cannot_fire_when_busy(self):
        runtime, buffers = self.make_task()
        buffers["a"].produce("env", [1, 2], 2)
        runtime.start_firing()
        assert not runtime.can_fire()


class TestDrivers:
    def test_source_produces_periodically(self):
        queue = EventQueue()
        trace = TraceRecorder()
        buffer = CircularBuffer("b", 8)
        buffer.register_consumer("c")
        driver = SourceDriver(
            name="src", buffer=buffer, period=Fraction(1, 10), values=iter(range(100)),
            trace=trace, queue=queue,
        )
        driver.start()
        queue.run_until(Fraction(1))
        assert driver.produced == 8  # buffer capacity reached
        assert driver.dropped >= 1
        assert trace.measured_rate("src") == 10

    def test_sink_underflow_recorded(self):
        queue = EventQueue()
        trace = TraceRecorder()
        buffer = CircularBuffer("b", 4, initial_values=[1])
        driver = SinkDriver(
            name="snk", buffer=buffer, period=Fraction(1, 10), trace=trace, queue=queue,
            start_time=Fraction(0),
        )
        driver.start()
        queue.run_until(Fraction(1, 2))
        assert driver.consumed == [1]
        assert driver.misses >= 1
        assert any(v.kind == "sink-underflow" for v in trace.violations)


class TestSimulation:
    def test_quickstart_simulation_behaviour(self, quickstart_sized):
        result, sizing = quickstart_sized
        simulation = Simulation(
            result,
            quickstart_registry(),
            source_signals={"samples": [float(i) for i in range(10000)]},
            capacities=sizing.capacities,
        )
        trace = simulation.run(Fraction(1, 4))
        assert trace.deadline_miss_count() == 0
        # 2:1 averaging of 0,1,2,3,... gives 0.5, 2.5, 4.5, ...
        values = simulation.sinks["averages"].consumed
        assert values[:3] == [0.5, 2.5, 4.5]
        assert trace.measured_rate("averages") == 1000
        # Measured occupancy never exceeds the analysed capacities.
        for name, mark in trace.buffer_high_water.items():
            assert mark <= simulation.buffers[name].capacity

    def test_run_until_sink_count(self, quickstart_sized):
        result, sizing = quickstart_sized
        simulation = Simulation(
            result,
            quickstart_registry(),
            source_signals={"samples": [float(i) for i in range(10000)]},
            capacities=sizing.capacities,
        )
        simulation.run_until_sink_count("averages", 5, max_time=Fraction(1))
        assert len(simulation.sinks["averages"].consumed) >= 5

    def test_default_capacity_used_without_analysis(self, quickstart_compiled):
        simulation = Simulation(
            quickstart_compiled,
            quickstart_registry(),
            source_signals={"samples": [float(i) for i in range(1000)]},
            capacities={},
            default_capacity=8,
        )
        trace = simulation.run(Fraction(1, 20))
        assert len(simulation.sinks["averages"].consumed) > 0

    def test_trace_summary_renders(self, quickstart_sized):
        result, sizing = quickstart_sized
        simulation = Simulation(
            result,
            quickstart_registry(),
            source_signals={"samples": [0.0] * 1000},
            capacities=sizing.capacities,
        )
        trace = simulation.run(Fraction(1, 20))
        text = trace.summary()
        assert "endpoint events" in text
        assert "samples" in text
