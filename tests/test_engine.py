"""Tests for the pluggable scheduler engine (ready set, policies, dispatch).

The load-bearing guarantee of the engine refactor is *observational
equivalence*: indexed ready-set dispatch must produce bit-identical
self-timed traces to the brute-force polling reference (the seed
implementation) on every application, while the policies reshape timing in
exactly the documented ways (bounded processors serialise, static order
replays the sequential baseline's schedule).
"""

from fractions import Fraction

import pytest

from repro.apps.modal_audio import simulate_two_mode, two_mode_registry
from repro.apps.pal_decoder import PalDecoderApp
from repro.apps.producer_consumer import quickstart_registry, simulate_quickstart
from repro.apps.rate_converter import fig2_task_graph
from repro.baselines.sequential_schedule import (
    generate_sequential_program,
    rate_conversion_graph,
    static_order_policy,
)
from repro.engine import (
    BoundedProcessors,
    ReadySet,
    SelfTimedUnbounded,
    StaticOrder,
    fork_join_program,
    ring_program,
    run_tasks,
    tasks_from_sdf,
)
from repro.graph.circular_buffer import CircularBuffer
from repro.graph.taskgraph import Access, Task
from repro.runtime.functions import FunctionRegistry
from repro.runtime.simulator import Simulation
from repro.runtime.tasks import RuntimeTask
from repro.runtime.trace import TraceRecorder


def assert_traces_identical(a, b):
    """Bit-identical traces: same firings in the same order, same endpoint
    events, same violations, same occupancy high-water marks."""
    assert a.firings == b.firings
    assert a.endpoint_events == b.endpoint_events
    assert a.violations == b.violations
    assert a.buffer_high_water == b.buffer_high_water


# ---------------------------------------------------------------------------
# Ready set ordering
# ---------------------------------------------------------------------------

class TestReadySet:
    def test_orders_by_index(self):
        ready = ReadySet()
        for index in (3, 1, 2):
            ready.push(index)
        assert [ready.pop(), ready.pop(), ready.pop(), ready.pop()] == [1, 2, 3, None]

    def test_duplicate_push_is_ignored(self):
        ready = ReadySet()
        ready.push(1)
        ready.push(1)
        assert len(ready) == 1
        assert ready.pop() == 1
        assert ready.pop() is None

    def test_wake_behind_cursor_goes_to_next_pass(self):
        # Polling pass order: a task woken at-or-before the scan cursor is
        # only reached in the next pass, one woken ahead still in this pass.
        ready = ReadySet()
        ready.push(2)
        assert ready.pop() == 2  # cursor now 2
        ready.push(1)  # behind the cursor -> next pass
        ready.push(3)  # ahead of the cursor -> this pass
        assert ready.pop() == 3
        assert ready.pop() == 1  # next pass starts after this one drains
        assert ready.pop() is None

    def test_cursor_resets_between_dispatches(self):
        ready = ReadySet()
        ready.push(5)
        assert ready.pop() == 5
        assert ready.pop() is None  # dispatch ends, cursor reset
        ready.push(1)
        assert ready.pop() == 1


# ---------------------------------------------------------------------------
# Circular-buffer cached aggregates
# ---------------------------------------------------------------------------

class TestBufferCaching:
    def brute_force(self, buffer):
        producers = [w for w in buffer._producers.values() if w.active] or list(
            buffer._producers.values()
        )
        consumers = [w for w in buffer._consumers.values() if w.active] or list(
            buffer._consumers.values()
        )
        produced = min((w.released for w in producers), default=buffer._initial)
        consumed = min((w.released for w in consumers), default=0) if buffer._consumers else 0
        return produced - consumed

    def test_cached_tokens_track_mutations(self):
        buffer = CircularBuffer("b", 8, initial_values=[1, 2])
        buffer.register_producer("p1")
        buffer.register_producer("p2")
        buffer.register_consumer("c")
        assert buffer.tokens_available == self.brute_force(buffer)
        buffer.produce("p1", [10, 11], 2)
        assert buffer.tokens_available == self.brute_force(buffer)  # p2 lags
        buffer.produce("p2", None, 2)
        # 2 initial values + 2 released past by every producer
        assert buffer.tokens_available == self.brute_force(buffer) == 4
        buffer.consume("c", 1)
        assert buffer.tokens_available == self.brute_force(buffer) == 3

    def test_cache_invalidated_on_activation_change(self):
        buffer = CircularBuffer("b", 8)
        buffer.register_producer("fast")
        buffer.register_producer("slow")
        buffer.register_consumer("c")
        buffer.produce("fast", [1, 2, 3], 3)
        assert buffer.tokens_available == 0  # slow producer holds the floor
        buffer.set_producer_active("slow", False)
        assert buffer.tokens_available == 3  # floor recomputed without it
        buffer.set_producer_active("slow", True)
        assert buffer.tokens_available == 0

    def test_cache_invalidated_on_window_advance(self):
        buffer = CircularBuffer("b", 8)
        buffer.register_producer("p")
        buffer.register_consumer("a")
        buffer.register_consumer("b")
        buffer.produce("p", [1, 2, 3, 4], 4)
        buffer.consume("a", 4)
        assert buffer.space_available == 4  # consumer b pins the space floor
        buffer.advance_consumer_to("b", 4)
        assert buffer.space_available == 8

    def test_watchers_fire_exactly_on_floor_change(self):
        buffer = CircularBuffer("b", 8)
        buffer.register_producer("p1")
        buffer.register_producer("p2")
        buffer.register_consumer("c")
        events = []
        buffer.watch_tokens(lambda: events.append("tokens"))
        buffer.watch_space(lambda: events.append("space"))

        buffer.produce("p1", [1], 1)
        assert events == []  # p2 still at 0: the floor did not move
        buffer.produce("p2", None, 1)
        assert events == ["tokens"]  # now every producer released past 0
        buffer.consume("c", 1)
        assert events == ["tokens", "space"]

    def test_can_produce_no_consumer_bound_by_capacity(self):
        # The cleaned-up arithmetic: without consumers the bound is capacity.
        buffer = CircularBuffer("b", 2)
        buffer.register_producer("p")
        assert buffer.can_produce("p", 2)
        assert not buffer.can_produce("p", 3)
        buffer.produce("p", [1, 2], 2)
        assert not buffer.can_produce("p", 1)


# ---------------------------------------------------------------------------
# Scheduler equivalence: ready set vs brute-force polling
# ---------------------------------------------------------------------------

class TestDispatcherEquivalence:
    def test_quickstart_traces_identical(self, quickstart_sized):
        result, sizing = quickstart_sized
        traces = [
            simulate_quickstart(
                Fraction(1, 5), result=result, sizing=sizing, dispatcher=mode
            )[1]
            for mode in ("polling", "ready-set")
        ]
        assert len(traces[0].firings) > 100
        assert_traces_identical(*traces)

    def test_rate_converter_traces_identical(self):
        # The Fig. 2 rate-conversion task graph, executed self-timed.
        tasks_a = tasks_from_sdf(fig2_task_graph(), iterations=40)
        tasks_b = tasks_from_sdf(fig2_task_graph(), iterations=40)
        a = run_tasks(tasks_a, mode="polling", stop_after_firings=150)
        b = run_tasks(tasks_b, mode="ready-set", stop_after_firings=150)
        assert len(a.trace.firings) >= 150
        assert_traces_identical(a.trace, b.trace)

    def test_pal_decoder_traces_identical(self, pal_sized):
        result, sizing = pal_sized
        app = PalDecoderApp(scale=1000)
        traces = [
            app.simulate(
                Fraction(1, 20), result=result, sizing=sizing, dispatcher=mode
            )[1]
            for mode in ("polling", "ready-set")
        ]
        assert len(traces[0].firings) > 500
        assert_traces_identical(*traces)

    def test_modal_mode_switching_traces_identical(self, two_mode_sized):
        # Mode switches (de)activate whole loops: the ready-set dispatcher
        # must re-examine tasks whose eligibility changed without any buffer
        # floor moving.
        result, sizing = two_mode_sized
        traces = [
            simulate_two_mode(
                Fraction(1, 5), result=result, sizing=sizing, dispatcher=mode
            )[1]
            for mode in ("polling", "ready-set")
        ]
        assert len(traces[0].firings) > 100
        assert_traces_identical(*traces)

    def test_ring_traces_identical(self):
        a = run_tasks(ring_program(60, tokens=5, stagger=7), mode="polling",
                      stop_after_firings=600)
        b = run_tasks(ring_program(60, tokens=5, stagger=7), mode="ready-set",
                      stop_after_firings=600)
        assert a.engine.completed_firings == b.engine.completed_firings == 600
        assert_traces_identical(a.trace, b.trace)

    def test_invalid_dispatcher_rejected(self, quickstart_sized):
        result, sizing = quickstart_sized
        with pytest.raises(ValueError):
            Simulation(result, quickstart_registry(), capacities=sizing.capacities,
                       dispatcher="quantum")


# ---------------------------------------------------------------------------
# StaticOrder: the sequential baseline as a policy
# ---------------------------------------------------------------------------

class TestStaticOrderPolicy:
    @pytest.mark.parametrize("produce,consume", [(3, 2), (5, 3), (4, 7)])
    def test_matches_generated_sequential_program(self, produce, consume):
        graph = rate_conversion_graph(produce, consume)
        program = generate_sequential_program(graph)
        iterations = 3
        run = run_tasks(
            tasks_from_sdf(graph, iterations=iterations),
            policy=static_order_policy(graph),
            stop_after_firings=len(program.schedule) * iterations,
        )
        assert run.firing_sequence() == program.schedule * iterations

    def test_static_order_is_serial(self):
        graph = rate_conversion_graph(3, 2)
        run = run_tasks(
            tasks_from_sdf(graph, iterations=3),
            policy=static_order_policy(graph),
            stop_after_firings=10,
        )
        firings = sorted(run.trace.firings, key=lambda f: (f.start, f.end))
        for earlier, later in zip(firings, firings[1:]):
            assert earlier.end <= later.start

    def test_non_cyclic_schedule_stops_after_one_iteration(self):
        graph = rate_conversion_graph(3, 2)
        program = generate_sequential_program(graph)
        run = run_tasks(
            tasks_from_sdf(graph, iterations=3),
            policy=StaticOrder(program.schedule, cyclic=False),
            stop_after_firings=100,
        )
        assert run.firing_sequence() == program.schedule

    def test_deadlocking_graph_rejected(self):
        from repro.dataflow.sdf import SDFGraph

        graph = SDFGraph("dead")
        graph.add_actor("a")
        graph.add_actor("b")
        graph.add_edge("ab", "a", "b")
        graph.add_edge("ba", "b", "a")  # no initial tokens: deadlock
        with pytest.raises(ValueError):
            static_order_policy(graph)

    def _init_plus_loop_program(self):
        """A 2-task steady-state ring plus a one-shot init task that is
        eligible at t = 0 alongside the first steady-state firing."""
        registry = FunctionRegistry()
        registry.register("fa", lambda value: value)
        registry.register("fb", lambda value: value)
        registry.register("fi", lambda: 1.0)

        def make(name, reads, writes, *, one_shot=False):
            task = Task(name=name, kind="call", function=f"f{name}",
                        firing_duration=Fraction(1))
            task.reads = [Access(buffer.name, 1) for buffer in reads]
            task.writes = [Access(buffer.name, 1) for buffer in writes]
            runtime = RuntimeTask(
                name=name,
                task=task,
                instance="so",
                registry=registry,
                buffers={buffer.name: buffer for buffer in (*reads, *writes)},
                wcet=Fraction(1),
                one_shot=one_shot,
            )
            key = runtime.producer_key()
            for buffer in reads:
                buffer.register_consumer(key)
            for buffer in writes:
                buffer.register_producer(key)
            return runtime

        ring_in = CircularBuffer("so/ring_in", 2, initial_values=[0.0])
        ring_out = CircularBuffer("so/ring_out", 2)
        seed = CircularBuffer("so/seed", 2)
        # init first: extraction orders one-shots before the loop tasks
        return [
            make("i", [], [seed], one_shot=True),
            make("a", [ring_in], [ring_out]),
            make("b", [ring_out], [ring_in]),
        ]

    def test_stale_completion_does_not_corrupt_schedule_position(self):
        # Mirror of the BoundedProcessors hardening: a stale completion
        # arriving after reset() must not advance the schedule position or
        # clear an in-flight flag it does not own.
        policy = StaticOrder(["a", "b"])

        class _Steady:
            one_shot = False

        task = _Steady()
        policy.on_start(task)
        policy.reset()  # run stopped mid-flight, engine resets the policy
        policy.on_complete(task)  # stale completion of the old run
        assert policy.position == 0
        assert policy.current() == "a"
        policy.on_start(task)
        policy.on_complete(task)
        assert policy.position == 1

    def test_default_key_policy_is_picklable(self):
        # Process-parallel sweeps ship scheduler instances to worker
        # processes; the default schedule key must therefore be a module
        # level function, not a lambda.  A pickled copy keeps behaving.
        import pickle

        policy = StaticOrder(["a", "b"], cyclic=False)
        revived = pickle.loads(pickle.dumps(policy))
        assert revived.order == ["a", "b"]
        assert revived.current() == "a"

        class _Steady:
            one_shot = False
            name = "a"

        assert revived.allow_start(_Steady())

    def test_one_shot_cannot_overlap_in_flight_firing(self):
        # Regression: one-shot init tasks were admitted unconditionally, so
        # an init firing could start while a steady-state firing was in
        # flight -- two firings on the supposedly single processor.
        run = run_tasks(
            self._init_plus_loop_program(),
            policy=StaticOrder(["a", "b"]),
            stop_after_firings=5,
        )
        firings = sorted(run.trace.firings, key=lambda f: (f.start, f.end))
        assert any(f.task == "so:i" for f in firings)  # the init did fire
        for earlier, later in zip(firings, firings[1:]):
            assert earlier.end <= later.start, (
                f"{earlier.task} (ends {earlier.end}) overlaps "
                f"{later.task} (starts {later.start})"
            )


# ---------------------------------------------------------------------------
# BoundedProcessors: Fig. 4 speedup scenarios
# ---------------------------------------------------------------------------

class TestBoundedProcessors:
    def test_one_processor_serialises(self):
        run = run_tasks(
            fork_join_program(4), policy=BoundedProcessors(1), stop_after_firings=30
        )
        firings = sorted(run.trace.firings, key=lambda f: (f.start, f.end))
        for earlier, later in zip(firings, firings[1:]):
            assert earlier.end <= later.start

    def test_speedup_curve_is_monotone(self):
        makespans = {}
        for processors in (1, 2, 4, 8):
            run = run_tasks(
                fork_join_program(8),
                policy=BoundedProcessors(processors),
                stop_after_firings=50,
            )
            assert run.engine.completed_firings == 50
            makespans[processors] = run.makespan
        assert makespans[1] >= makespans[2] >= makespans[4] >= makespans[8]
        # near-linear scaling on the embarrassingly parallel rounds
        assert makespans[1] / makespans[8] > 4

    def test_matches_unbounded_when_processors_exceed_tasks(self):
        tasks_bounded = ring_program(20, tokens=4)
        tasks_unbounded = ring_program(20, tokens=4)
        a = run_tasks(tasks_bounded, policy=BoundedProcessors(64),
                      stop_after_firings=200)
        b = run_tasks(tasks_unbounded, policy=SelfTimedUnbounded(),
                      stop_after_firings=200)
        assert_traces_identical(a.trace, b.trace)

    def test_invalid_processor_count_rejected(self):
        with pytest.raises(ValueError):
            BoundedProcessors(0)

    def test_policy_instance_reusable_across_runs(self):
        # A run stopped mid-flight leaves in-flight firings whose completions
        # never ran; the next engine must reset the processor accounting or
        # the policy would refuse every start forever.
        policy = BoundedProcessors(1)
        first = run_tasks(fork_join_program(4), policy=policy, stop_after_firings=7)
        assert first.engine.completed_firings >= 7
        second = run_tasks(fork_join_program(4), policy=policy, stop_after_firings=12)
        assert second.engine.completed_firings >= 12

    def test_stale_completion_cannot_drive_busy_negative(self):
        # A run stopped mid-flight leaves completions that never fired; when
        # the policy is reset (or reused) and such a stale completion still
        # arrives, the busy count must clamp at zero instead of going
        # negative and over-admitting starts ever after.
        policy = BoundedProcessors(1)
        policy.on_start(None)
        policy.reset()  # the engine resets between runs
        policy.on_complete(None)  # stale completion of the old run
        assert policy.busy == 0
        assert policy.stale_completions == 1  # the anomaly stays observable
        policy.on_start(None)
        assert policy.busy == 1
        assert not policy.allow_start(None)

    def test_makespan_available_with_tracing_off(self):
        run = run_tasks(
            ring_program(20, tokens=4),
            policy=BoundedProcessors(2),
            stop_after_firings=100,
            trace=TraceRecorder(level="off"),
        )
        assert run.trace.firings == []
        assert run.makespan > 0


# ---------------------------------------------------------------------------
# Double-start regression
# ---------------------------------------------------------------------------

class TestDriverStartIdempotence:
    def test_run_twice_does_not_duplicate_periodic_events(self, quickstart_sized):
        result, sizing = quickstart_sized
        simulation = Simulation(
            result,
            quickstart_registry(),
            source_signals={"samples": [float(i) for i in range(10000)]},
            capacities=sizing.capacities,
        )
        simulation.run(Fraction(1, 100))
        trace = simulation.run(Fraction(2, 100))  # continues to t = 2/100
        source = simulation.sources["samples"]
        # 2 kHz source over 20 ms: 41 ticks (t=0 inclusive) -- a duplicated
        # tick chain would produce roughly twice that.
        assert source.produced <= 41
        assert trace.deadline_miss_count() == 0

    def test_run_then_run_until_sink_count(self, quickstart_sized):
        result, sizing = quickstart_sized
        simulation = Simulation(
            result,
            quickstart_registry(),
            source_signals={"samples": [float(i) for i in range(10000)]},
            capacities=sizing.capacities,
        )
        simulation.run(Fraction(1, 100))
        simulation.run_until_sink_count("averages", 30, max_time=Fraction(1))
        assert len(simulation.sinks["averages"].consumed) >= 30
        assert simulation.trace.deadline_miss_count() == 0

    def test_double_start_matches_single_run_trace(self, quickstart_sized):
        result, sizing = quickstart_sized
        signal = [float(i) for i in range(10000)]

        def build():
            return Simulation(
                result,
                quickstart_registry(),
                source_signals={"samples": list(signal)},
                capacities=sizing.capacities,
            )

        reference = build()
        reference.run(Fraction(2, 100))
        restarted = build()
        restarted.run(Fraction(1, 100))
        restarted.run(Fraction(2, 100))
        assert_traces_identical(reference.trace, restarted.trace)


# ---------------------------------------------------------------------------
# Trace levels
# ---------------------------------------------------------------------------

class TestTraceLevels:
    def test_off_records_nothing(self, quickstart_sized):
        result, sizing = quickstart_sized
        simulation, trace = simulate_quickstart(
            Fraction(1, 20), result=result, sizing=sizing, trace_level="off"
        )
        assert trace.firings == []
        assert trace.endpoint_events == []
        assert trace.violations == []
        assert trace.buffer_high_water == {}
        # the simulation itself still ran
        assert len(simulation.sinks["averages"].consumed) > 0

    def test_endpoints_level_skips_firings_keeps_measurements(self, quickstart_sized):
        result, sizing = quickstart_sized
        _, trace = simulate_quickstart(
            Fraction(1, 20), result=result, sizing=sizing, trace_level="endpoints"
        )
        assert trace.firings == []
        assert trace.buffer_high_water == {}
        assert len(trace.endpoint_events) > 0
        assert trace.measured_rate("averages") is not None

    def test_full_level_unchanged(self, quickstart_sized):
        result, sizing = quickstart_sized
        _, trace = simulate_quickstart(
            Fraction(1, 20), result=result, sizing=sizing, trace_level="full"
        )
        assert len(trace.firings) > 0
        assert len(trace.buffer_high_water) > 0

    def test_invalid_level_rejected(self):
        with pytest.raises(ValueError):
            TraceRecorder(level="verbose")

    def test_sink_values_identical_across_levels(self, quickstart_sized):
        result, sizing = quickstart_sized
        consumed = {}
        for level in ("off", "endpoints", "full"):
            simulation, _ = simulate_quickstart(
                Fraction(1, 20), result=result, sizing=sizing, trace_level=level
            )
            consumed[level] = list(simulation.sinks["averages"].consumed)
        assert consumed["off"] == consumed["endpoints"] == consumed["full"]
