"""Tests for the platform subsystem (processors, platform policies, engine
suspend/resume) and its plumbing through the facade.

The two load-bearing guarantees:

* **Degenerate equivalence** -- the legacy boolean policies re-expressed
  over the platform layer (self-timed, bounded processors, static order)
  produce *bit-identical* traces to the originals on all four packaged
  applications and on the synthetic scheduler workloads.
* **Exact preemption accounting** -- a preempted firing is suspended with
  its exact remaining work (native tick arithmetic, no drift), resumes --
  possibly on a different-speed processor -- and completes at the exactly
  predicted instant, with per-processor busy time adding up.
"""

from fractions import Fraction

import pytest

from repro.api import Program
from repro.api.program import Analysis
from repro.api.sweep import Sweep
from repro.apps.modal_audio import two_mode_program
from repro.apps.pal_decoder import PalDecoderApp
from repro.apps.producer_consumer import quickstart_program
from repro.apps.rate_converter import fig2_program
from repro.baselines.sequential_schedule import (
    generate_sequential_program,
    rate_conversion_graph,
)
from repro.engine import (
    BoundedProcessors,
    ExecutionEngine,
    SelfTimedUnbounded,
    StaticOrder,
    fork_join_program,
    ring_program,
    run_tasks,
    tasks_from_sdf,
)
from repro.graph.circular_buffer import CircularBuffer
from repro.graph.taskgraph import Access, Task
from repro.platform import (
    FixedPriorityPreemptive,
    ListScheduledPlatform,
    PartitionedHeterogeneous,
    Platform,
    Processor,
    SelfTimedPlatform,
    StaticOrderPlatform,
)
from repro.runtime.events import EventQueue
from repro.runtime.functions import FunctionRegistry
from repro.runtime.tasks import RuntimeTask
from repro.runtime.trace import TraceRecorder
from repro.util.rational import TimeBase


def assert_traces_identical(a, b):
    assert a.firings == b.firings
    assert a.endpoint_events == b.endpoint_events
    assert a.violations == b.violations
    assert a.buffer_high_water == b.buffer_high_water


# ---------------------------------------------------------------------------
# Platform model
# ---------------------------------------------------------------------------

class TestPlatformModel:
    def test_processor_speed_is_exact_rational(self):
        processor = Processor("p0", speed=0.5)
        assert processor.speed == Fraction(1, 2)
        assert processor.duration_of(Fraction(1, 100)) == Fraction(1, 50)

    def test_processor_rejects_non_positive_speed(self):
        with pytest.raises(ValueError):
            Processor("p0", speed=0)
        with pytest.raises(ValueError):
            Processor("p0", speed=-1)

    def test_duplicate_processor_names_rejected(self):
        with pytest.raises(ValueError):
            Platform([Processor("p0"), Processor("p0")])

    def test_mapping_to_unknown_processor_rejected(self):
        with pytest.raises(ValueError):
            Platform([Processor("p0")], mapping={"t": "p9"})

    def test_homogeneous_builder(self):
        platform = Platform.homogeneous(3)
        assert [p.name for p in platform] == ["p0", "p1", "p2"]
        assert platform.speeds == (1, 1, 1)
        assert not platform.is_unbounded

    def test_heterogeneous_builder_and_scaled_durations(self):
        platform = Platform.heterogeneous([2, 1, 1])
        wcet = Fraction(1, 100)
        scaled = set(platform.scaled_durations([wcet]))
        assert scaled == {Fraction(1, 100), Fraction(1, 200)}

    def test_unbounded_platform(self):
        platform = Platform.unbounded()
        assert platform.is_unbounded
        assert len(platform) == 0
        assert isinstance(platform.policy(), SelfTimedPlatform)

    def test_default_policy_selection(self):
        assert isinstance(Platform.homogeneous(2).policy(), ListScheduledPlatform)
        mapped = Platform.heterogeneous([2, 1], mapping={"a": "p0"})
        assert isinstance(mapped.policy(), PartitionedHeterogeneous)

    def test_platform_is_picklable_and_value_equal(self):
        import pickle

        platform = Platform.heterogeneous([2, 1], mapping={"a": "p0"}, name="pal")
        revived = pickle.loads(pickle.dumps(platform))
        assert revived == platform
        assert hash(revived) == hash(platform)
        assert revived.processor("p0").speed == 2


# ---------------------------------------------------------------------------
# Degenerate equivalence on the packaged applications
# ---------------------------------------------------------------------------

#: (legacy policy factory, platform re-expression factory) pairs that must be
#: observationally indistinguishable.
DEGENERATE_PAIRS = [
    ("self-timed", lambda: SelfTimedUnbounded(), lambda: SelfTimedPlatform()),
    *[
        (
            f"bounded-{n}",
            (lambda n=n: BoundedProcessors(n)),
            (lambda n=n: ListScheduledPlatform(Platform.homogeneous(n))),
        )
        for n in (1, 2, 4)
    ],
]


@pytest.fixture(scope="module")
def app_analyses(pal_sized, quickstart_sized, two_mode_sized):
    """(name, analysis, duration) per packaged application, reusing the
    session-cached compilations."""
    pal_result, pal_sizing = pal_sized
    quick_result, quick_sizing = quickstart_sized
    two_result, two_sizing = two_mode_sized
    rc_program = fig2_program()
    entries = [
        ("quickstart", Analysis(quickstart_program(), quick_result, sizing=quick_sizing), Fraction(1, 10)),
        ("pal_decoder", Analysis(PalDecoderApp(scale=1000).program(), pal_result, sizing=pal_sizing), Fraction(1, 20)),
        ("modal_two_mode", Analysis(two_mode_program(), two_result, sizing=two_sizing), Fraction(1, 5)),
        ("rate_converter", rc_program.analyze(), Fraction(1, 5)),
    ]
    return entries


class TestDegenerateEquivalenceOnApps:
    @pytest.mark.parametrize(
        "label,legacy,platform", DEGENERATE_PAIRS, ids=[p[0] for p in DEGENERATE_PAIRS]
    )
    def test_traces_bit_identical_on_all_four_apps(
        self, app_analyses, label, legacy, platform
    ):
        for name, analysis, duration in app_analyses:
            reference = analysis.run(duration, scheduler=legacy())
            candidate = analysis.run(duration, scheduler=platform())
            assert len(reference.trace.firings) > 0, name
            assert_traces_identical(reference.trace, candidate.trace)
            for sink in reference.simulation.sinks:
                assert reference.sink(sink) == candidate.sink(sink), (name, label, sink)

    def test_platform_runs_account_busy_time(self, app_analyses):
        _, analysis, duration = app_analyses[0]
        run = analysis.run(duration, scheduler=ListScheduledPlatform(Platform.homogeneous(2)))
        busy = run.processor_busy
        assert set(busy) == {"p0", "p1"}
        assert sum(busy.values()) > 0
        utilisation = run.processor_utilisation()
        assert all(0.0 <= value <= 1.0 for value in utilisation.values())


class TestDegenerateEquivalenceSynthetic:
    def test_self_timed_ring_traces_identical(self):
        a = run_tasks(ring_program(60, tokens=5, stagger=7), policy=SelfTimedUnbounded(),
                      stop_after_firings=600)
        b = run_tasks(ring_program(60, tokens=5, stagger=7), policy=SelfTimedPlatform(),
                      stop_after_firings=600)
        assert a.engine.completed_firings == b.engine.completed_firings == 600
        assert_traces_identical(a.trace, b.trace)

    @pytest.mark.parametrize("processors", [1, 2, 4])
    def test_bounded_fork_join_traces_identical(self, processors):
        a = run_tasks(fork_join_program(8), policy=BoundedProcessors(processors),
                      stop_after_firings=50)
        b = run_tasks(
            fork_join_program(8),
            policy=ListScheduledPlatform(Platform.homogeneous(processors)),
            stop_after_firings=50,
        )
        assert_traces_identical(a.trace, b.trace)

    @pytest.mark.parametrize("produce,consume", [(3, 2), (5, 3), (4, 7)])
    def test_static_order_matches_legacy_policy(self, produce, consume):
        graph = rate_conversion_graph(produce, consume)
        program = generate_sequential_program(graph)
        iterations = 3
        firings = len(program.schedule) * iterations
        a = run_tasks(
            tasks_from_sdf(graph, iterations=iterations),
            policy=StaticOrder(program.schedule),
            stop_after_firings=firings,
        )
        b = run_tasks(
            tasks_from_sdf(graph, iterations=iterations),
            policy=StaticOrderPlatform(program.schedule),
            stop_after_firings=firings,
        )
        assert a.firing_sequence() == b.firing_sequence() == program.schedule * iterations
        assert_traces_identical(a.trace, b.trace)

    def test_run_tasks_accepts_platform_shorthand(self):
        run = run_tasks(
            ring_program(20, tokens=4),
            platform=Platform.homogeneous(2),
            stop_after_firings=100,
        )
        assert run.engine.completed_firings == 100
        assert set(run.engine.processor_busy_time) == {"p0", "p1"}

    def test_run_tasks_rejects_policy_and_platform_together(self):
        with pytest.raises(ValueError):
            run_tasks(
                ring_program(10, tokens=2),
                policy=SelfTimedUnbounded(),
                platform=Platform.homogeneous(2),
            )

    def test_platform_policy_rejected_in_polling_mode(self):
        with pytest.raises(ValueError):
            run_tasks(
                ring_program(10, tokens=2),
                policy=ListScheduledPlatform(Platform.homogeneous(2)),
                mode="polling",
            )


# ---------------------------------------------------------------------------
# Preemption: suspend / resume with exact tick accounting
# ---------------------------------------------------------------------------

def _black_box_task(name, registry, reads, writes, wcet, one_shot=False):
    task = Task(name=name, kind="call", function=name, firing_duration=wcet)
    task.reads = [Access(buffer.name, count) for buffer, count in reads]
    task.writes = [Access(buffer.name, count) for buffer, count in writes]
    buffers = {buffer.name: buffer for buffer, _ in (*reads, *writes)}
    runtime = RuntimeTask(
        name=name,
        task=task,
        instance="fp",
        registry=registry,
        buffers=buffers,
        wcet=Fraction(wcet),
        one_shot=one_shot,
    )
    key = runtime.producer_key()
    for buffer, _ in reads:
        buffer.register_consumer(key)
    for buffer, _ in writes:
        buffer.register_producer(key)
    return runtime


class TestFixedPriorityPreemption:
    def _high_low_scenario(self):
        """A single processor: low-priority task L fires [0, 10]; an external
        token at t = 3 makes high-priority H eligible mid-firing."""
        registry = FunctionRegistry()
        registry.register("h", lambda value: value)
        registry.register("l", lambda value: value + 1.0)
        h_in = CircularBuffer("fp/h_in", 4)
        h_in.register_producer("ext")
        h_out = CircularBuffer("fp/h_out", 8)
        loop = CircularBuffer("fp/l_loop", 2, initial_values=[0.0])
        # registration order is the default priority order: H outranks L
        high = _black_box_task("h", registry, reads=[(h_in, 1)], writes=[(h_out, 1)], wcet=2)
        low = _black_box_task("l", registry, reads=[(loop, 1)], writes=[(loop, 1)], wcet=10)
        return registry, h_in, high, low

    def test_high_priority_task_preempts_mid_firing_exact_ticks(self):
        _, h_in, high, low = self._high_low_scenario()
        queue = EventQueue(TimeBase(1))  # 1-second ticks: all wcets integral
        trace = TraceRecorder()
        engine = ExecutionEngine(
            queue, trace, policy=FixedPriorityPreemptive(Platform.homogeneous(1))
        )
        engine.register_task(high)
        engine.register_task(low)
        engine.wire_buffers()
        engine.wake_all()
        engine.schedule_dispatch()
        queue.schedule(3, lambda: h_in.produce("ext", [1.0], 1), label="ext-token")
        queue.run_until(100, stop=lambda: engine.completed_firings >= 2)

        # H fired [3, 5]; L started at 0, lost [3, 5] to H, finished at 12.
        assert [(f.task, f.start, f.end) for f in trace.firings] == [
            ("fp:h", Fraction(3), Fraction(5)),
            ("fp:l", Fraction(0), Fraction(12)),
        ]
        assert engine.preemptions == 1
        assert engine.resumes == 1
        assert low.preemptions == 1
        assert not low.suspended  # resumed and completed
        # the single processor was busy the whole [0, 12] window
        assert engine.processor_busy_time == {"p0": Fraction(12)}

    def test_suspension_state_is_observable_mid_flight(self):
        _, h_in, high, low = self._high_low_scenario()
        queue = EventQueue(TimeBase(1))
        engine = ExecutionEngine(
            queue, TraceRecorder(), policy=FixedPriorityPreemptive(Platform.homogeneous(1))
        )
        engine.register_task(high)
        engine.register_task(low)
        engine.wire_buffers()
        engine.wake_all()
        engine.schedule_dispatch()
        queue.schedule(3, lambda: h_in.produce("ext", [1.0], 1), label="ext-token")
        queue.run_until(4)  # H has preempted L, neither completed
        assert low.suspended and low.busy
        assert engine.suspended_tasks == [low]
        # the preempted completion event sits cancelled in the heap
        assert queue.cancelled_pending == 1
        queue.run_until(20, stop=lambda: engine.completed_firings >= 2)
        assert engine.suspended_tasks == []
        assert queue.cancelled_pending == 0

    def test_preempted_firing_migrates_and_rescales_remaining_work(self):
        """L2 is preempted on the half-speed p1 and resumes on the full-speed
        p0: the remaining work must be rescaled by the exact speed ratio."""
        registry = FunctionRegistry()
        registry.register("h", lambda value: value)
        registry.register("l1", lambda value: value)
        registry.register("l2", lambda value: value)
        h_in = CircularBuffer("fp/h_in", 4)
        h_in.register_producer("ext")
        h_out = CircularBuffer("fp/h_out", 8)
        loop1 = CircularBuffer("fp/loop1", 2, initial_values=[0.0])
        loop2 = CircularBuffer("fp/loop2", 2, initial_values=[0.0])
        high = _black_box_task("h", registry, reads=[(h_in, 1)], writes=[(h_out, 1)], wcet=4)
        low1 = _black_box_task(
            "l1", registry, reads=[(loop1, 1)], writes=[(loop1, 1)], wcet=6, one_shot=True
        )
        low2 = _black_box_task("l2", registry, reads=[(loop2, 1)], writes=[(loop2, 1)], wcet=8)

        platform = Platform(
            [Processor("p0", speed=1), Processor("p1", speed=Fraction(1, 2))]
        )
        queue = EventQueue()  # fraction mode: migration rescale always exact
        trace = TraceRecorder()
        engine = ExecutionEngine(queue, trace, policy=FixedPriorityPreemptive(platform))
        for task in (high, low1, low2):
            engine.register_task(task)
        engine.wire_buffers()
        engine.wake_all()
        engine.schedule_dispatch()
        queue.schedule(Fraction(2), lambda: h_in.produce("ext", [1.0], 1), label="ext")
        queue.run_until(Fraction(40), stop=lambda: engine.completed_firings >= 3)

        first = {}
        for firing in trace.firings:
            first.setdefault(firing.task, (firing.start, firing.end))
        # l1 (one-shot) takes p0 at full speed: [0, 6].  l2 takes the
        # half-speed p1 (8 s of work = 16 s of occupancy).  H arrives at
        # t = 2, preempts the lowest-priority running firing (l2) and runs
        # on p1 at half speed: [2, 10].  l1 frees p0 at 6, so the suspended
        # l2 migrates there: 14 s of p1-time owed = 7 s of work = 7 s on
        # the full-speed p0 -> completes at 13.
        assert first["fp:l1"] == (Fraction(0), Fraction(6))
        assert first["fp:h"] == (Fraction(2), Fraction(10))
        assert first["fp:l2"] == (Fraction(0), Fraction(13))
        assert engine.preemptions == 1 and engine.resumes == 1

    def test_auto_time_base_falls_back_to_fractions_for_migrating_policies(self):
        """A remainder accrued at speed s1 and resumed at s2 is not closed
        under any tick grid, so "auto" must keep exact fractions for a
        preemptive policy on a multi-speed platform instead of crashing
        mid-simulation with a TimeBaseError."""
        policy = FixedPriorityPreemptive(Platform.heterogeneous([2, 3]))
        assert policy.migrates_across_speeds
        run = run_tasks(
            ring_program(10, tokens=5, wcet=Fraction(1), stagger=3),
            policy=policy,
            stop_after_firings=60,
            time_base="auto",
        )
        assert run.queue.timebase is None  # fraction mode chosen
        assert run.engine.completed_firings >= 60
        # same-speed platforms keep the integer-tick fast path
        homogeneous = FixedPriorityPreemptive(Platform.homogeneous(2))
        assert not homogeneous.migrates_across_speeds
        ticked = run_tasks(
            ring_program(10, tokens=5, wcet=Fraction(1), stagger=3),
            policy=homogeneous,
            stop_after_firings=60,
        )
        assert ticked.queue.timebase is not None

    def test_busy_time_includes_segment_cut_by_the_horizon(self):
        """A firing still running when the horizon ends the run must count
        its executed segment, or saturated processors under-report."""
        registry = FunctionRegistry()
        registry.register("l", lambda value: value)
        loop = CircularBuffer("fp/l_loop", 2, initial_values=[0.0])
        task = _black_box_task("l", registry, reads=[(loop, 1)], writes=[(loop, 1)], wcet=10)
        run = run_tasks(
            [task],
            policy=ListScheduledPlatform(Platform.homogeneous(1)),
            horizon=Fraction(4),
            time_base="fraction",  # a 10 s tick would floor the horizon to 0
        )
        assert run.engine.completed_firings == 0  # cut mid-firing
        assert run.engine.processor_busy_time == {"p0": Fraction(4)}

    def test_preemptive_run_preserves_data_semantics(self, quickstart_sized):
        """Preemption reshapes timing only: sink values match the default
        self-timed run value-for-value."""
        result, sizing = quickstart_sized
        analysis = Analysis(quickstart_program(), result, sizing=sizing)
        reference = analysis.run(Fraction(1, 10))
        preemptive = analysis.run(
            Fraction(1, 10),
            scheduler=FixedPriorityPreemptive(Platform.homogeneous(2)),
        )
        assert preemptive.sink("averages") == reference.sink("averages")
        assert preemptive.deadline_misses == 0


# ---------------------------------------------------------------------------
# Partitioned heterogeneous scheduling
# ---------------------------------------------------------------------------

class TestPartitionedHeterogeneous:
    def test_firing_duration_scales_with_pinned_processor_speed(self):
        registry = FunctionRegistry()
        registry.register("a", lambda value: value)
        registry.register("b", lambda value: value)
        loop_a = CircularBuffer("ph/a", 2, initial_values=[0.0])
        loop_b = CircularBuffer("ph/b", 2, initial_values=[0.0])
        task_a = _black_box_task("a", registry, reads=[(loop_a, 1)], writes=[(loop_a, 1)], wcet=2)
        task_b = _black_box_task("b", registry, reads=[(loop_b, 1)], writes=[(loop_b, 1)], wcet=2)
        platform = Platform.heterogeneous([2, 1], mapping={"a": "p0", "b": "p1"})
        run = run_tasks(
            [task_a, task_b],
            policy=PartitionedHeterogeneous(platform),
            stop_after_firings=4,
        )
        by_task = {}
        for firing in run.trace.firings:
            by_task.setdefault(firing.task, []).append(firing.end - firing.start)
        assert by_task["fp:a"][0] == Fraction(1)  # wcet 2 at speed 2
        assert by_task["fp:b"][0] == Fraction(2)  # wcet 2 at speed 1

    def test_round_robin_fallback_pins_every_task(self):
        tasks = ring_program(6, tokens=2)
        policy = PartitionedHeterogeneous(Platform.homogeneous(2))
        run = run_tasks(tasks, policy=policy, stop_after_firings=30)
        assert run.engine.completed_firings == 30
        pinned = {policy.processor_of(task).name for task in tasks}
        assert pinned == {"p0", "p1"}

    def test_partitioned_serialises_per_processor(self):
        """Two tasks pinned to one processor never overlap; tasks on
        different processors may."""
        tasks = ring_program(4, tokens=2)
        mapping = {task.name: "p0" for task in tasks}
        platform = Platform.homogeneous(2, name="pin-all")
        policy = PartitionedHeterogeneous(platform, mapping=mapping)
        run = run_tasks(tasks, policy=policy, stop_after_firings=20)
        firings = sorted(run.trace.firings, key=lambda f: (f.start, f.end))
        for earlier, later in zip(firings, firings[1:]):
            assert earlier.end <= later.start  # everything shares p0

    def test_power_weights_yield_energy_estimate(self, quickstart_sized):
        result, sizing = quickstart_sized
        analysis = Analysis(quickstart_program(), result, sizing=sizing)
        platform = Platform(
            [
                Processor("big", speed=2, power_active=4.0, power_idle=1.0),
                Processor("little", speed=1, power_active=1.0),
                Processor("unmetered"),
            ]
        )
        run = analysis.run(Fraction(1, 10), platform=platform)
        energy = run.processor_energy()
        assert set(energy) == {"big", "little"}  # unmetered omitted
        busy = run.processor_busy
        expected_big = float(busy["big"]) * 4.0 + float(Fraction(1, 10) - busy["big"]) * 1.0
        assert energy["big"] == pytest.approx(expected_big)
        assert energy["little"] == pytest.approx(float(busy["little"]) * 1.0)
        # legacy runs have no platform, hence no energy estimate
        assert analysis.run(Fraction(1, 100)).processor_energy() == {}

    def test_heterogeneous_speedup_is_visible(self, quickstart_sized):
        """The same program finishes the same firings with higher utilisation
        headroom on a faster platform."""
        result, sizing = quickstart_sized
        analysis = Analysis(quickstart_program(), result, sizing=sizing)
        slow = analysis.run(Fraction(1, 10), platform=Platform.homogeneous(1, speed=1))
        fast = analysis.run(Fraction(1, 10), platform=Platform.homogeneous(1, speed=4))
        assert slow.completed_firings == fast.completed_firings
        assert sum(fast.processor_busy.values()) == sum(slow.processor_busy.values()) / 4


# ---------------------------------------------------------------------------
# Facade plumbing: Program / spec / sweep axis
# ---------------------------------------------------------------------------

class TestFacadePlumbing:
    def test_program_default_platform_flows_into_runs(self, quickstart_sized):
        result, sizing = quickstart_sized
        program = quickstart_program()
        program.platform = Platform.homogeneous(2)
        analysis = Analysis(program, result, sizing=sizing)
        run = analysis.run(Fraction(1, 20))
        assert run.platform == Platform.homogeneous(2)
        assert set(run.processor_busy) == {"p0", "p1"}
        # an explicit scheduler overrides the program default
        legacy = analysis.run(Fraction(1, 20), scheduler=SelfTimedUnbounded())
        assert legacy.platform is None
        assert legacy.processor_busy == {}

    def test_summary_names_the_policy_that_actually_ran(self, quickstart_sized):
        result, sizing = quickstart_sized
        analysis = Analysis(quickstart_program(), result, sizing=sizing)
        platform_run = analysis.run(Fraction(1, 20), platform=Platform.homogeneous(2))
        header = platform_run.summary().splitlines()[0]
        assert "ListScheduledPlatform" in header  # not mislabelled self-timed
        assert "busy" in platform_run.summary()  # concrete platform: util lines
        # unbounded virtual processors must not flood the summary
        self_timed = analysis.run(Fraction(1, 20), scheduler=SelfTimedPlatform())
        assert "busy" not in self_timed.summary()
        # the legacy default header is unchanged
        legacy = analysis.run(Fraction(1, 20))
        assert "scheduler SelfTimedUnbounded()" in legacy.summary().splitlines()[0]

    def test_spec_round_trips_platform(self):
        platform = Platform.heterogeneous([2, 1])
        program = Program.from_source(
            quickstart_program().source, name="qs", platform=platform
        )
        spec = program.spec()
        assert spec.platform == platform
        assert spec.ensure_picklable()
        rebuilt = spec.build()
        assert rebuilt.platform == platform

    def test_platform_axis_sweeps_serial_identical_to_process(self):
        """The acceptance tripwire: a heterogeneous-platform grid runs on
        the process backend with a report bit-identical to serial."""
        def grid():
            return Sweep("quickstart", duration=Fraction(1, 20)).add_axis(
                "platform",
                [
                    Platform.homogeneous(1),
                    Platform.heterogeneous([2, 1]),
                    Platform.heterogeneous([1, Fraction(1, 2)]),
                ],
            )

        serial = grid().run(workers=1)
        assert serial.ok, [failure.error for failure in serial.failures]
        process = grid().run(executor="process", workers=2)
        assert process.ok, [failure.error for failure in process.failures]
        assert not process.warnings, process.warnings
        assert serial.rows() == process.rows()
        assert serial.to_json() == process.to_json()
        # the heterogeneous points report per-processor utilisation columns
        assert "util[p0]" in serial.rows()[1]

    def test_sweep_rejects_platform_plus_scheduler_axes_up_front(self):
        from repro.api.spec import SweepConfigError
        from repro.engine import BoundedProcessors as Bounded

        sweep = (
            Sweep("quickstart", duration=Fraction(1, 100))
            .add_axis("platform", [Platform.homogeneous(2)])
            .add_axis("scheduler", [Bounded(1)])
        )
        with pytest.raises(SweepConfigError, match="scheduler.*platform"):
            sweep.run()  # fails before any compilation, not per point

    def test_platform_and_scheduler_together_rejected(self, quickstart_sized):
        result, sizing = quickstart_sized
        analysis = Analysis(quickstart_program(), result, sizing=sizing)
        with pytest.raises(Exception):
            analysis.run(
                Fraction(1, 100),
                scheduler=SelfTimedUnbounded(),
                platform=Platform.homogeneous(1),
            )


# ---------------------------------------------------------------------------
# EventQueue cancelled-entry accounting (used by the preemption re-post path)
# ---------------------------------------------------------------------------

class TestCancelledPendingCount:
    def test_counts_cancel_and_lazy_prune(self):
        queue = EventQueue()
        events = [queue.schedule(Fraction(i), lambda: None) for i in range(4)]
        assert queue.cancelled_pending == 0
        queue.cancel(events[0])
        queue.cancel(events[2])
        queue.cancel(events[2])  # double-cancel counts once
        assert queue.cancelled_pending == 2
        assert not queue.empty()  # prunes the cancelled head (event 0)
        assert queue.cancelled_pending == 1
        queue.run_until(Fraction(10))  # skips the cancelled event 2
        assert queue.cancelled_pending == 0
        assert queue.processed == 2
