"""Tests for the sweep service (repro.service): stable content digests, the
content-addressed result store, incremental checkpoints and resume, grid
sharding + merge, the job spool and the ``python -m repro sweep`` CLI.

The load-bearing invariant throughout: a report produced *any* service way
-- resumed after a kill, recombined from shards, served from the cache --
renders bit-identically (``to_json``, ``rows``) to a plain single-shot
serial run of the same sweep.
"""

import json
import os
import pickle
import subprocess
import sys
import textwrap
from fractions import Fraction
from pathlib import Path

import pytest

from repro.api import Sweep, SweepConfigError
from repro.api.spec import ProgramSpec, stable_digest
from repro.api.sweep import SweepReport
from repro.engine import BoundedProcessors, SelfTimedUnbounded
from repro.service import (
    CheckpointMismatchError,
    JobError,
    JobQueue,
    ResultStore,
    SweepCheckpoint,
    grid_digest,
    merge,
    point_key,
    point_keys,
    run_shard,
    run_service_sweep,
    shard,
)


def _square_point(n):
    """Module-level runner: stable identity for content addressing."""
    return {"value": n * n}


def _quick_sweep(**kwargs):
    return (
        Sweep("producer_consumer", duration=Fraction(2), **kwargs)
        .add_axis("scheduler", [BoundedProcessors(1), BoundedProcessors(2), None])
    )


# ---------------------------------------------------------------------------
# stable digests
# ---------------------------------------------------------------------------


class TestStableDigest:
    def test_equal_values_digest_equal(self):
        assert stable_digest({"a": 1, "b": [2, 3]}) == stable_digest(
            {"b": [2, 3], "a": 1}
        )
        assert stable_digest((1, 2)) == stable_digest([1, 2])

    def test_distinct_values_digest_distinct(self):
        samples = [
            None, True, False, 0, 1, "1", 1.0, Fraction(1, 3),
            {"a": 1}, {"a": 2}, [1], {1}, b"\x01",
            BoundedProcessors(2), BoundedProcessors(3), SelfTimedUnbounded(),
        ]
        digests = [stable_digest(value) for value in samples]
        assert len(set(digests)) == len(samples)

    def test_set_digest_ignores_insertion_and_hash_order(self):
        assert stable_digest({"x", "y", "zz", "q"}) == stable_digest(
            {"q", "zz", "y", "x"}
        )

    def test_digest_stable_across_hash_seeds(self):
        # The very property pickle bytes lack: the digest of a set-bearing
        # value must not depend on PYTHONHASHSEED.  Compute it under two
        # explicitly different seeds in fresh interpreters.
        script = textwrap.dedent(
            """
            from fractions import Fraction
            from repro.api.spec import stable_digest
            from repro.engine import BoundedProcessors
            value = {
                "axes": {"s", "set", "ordering", "probe"},
                "sched": BoundedProcessors(3),
                "d": Fraction(1, 7),
            }
            print(stable_digest(value))
            """
        )
        digests = set()
        for seed in ("0", "12345"):
            result = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                check=True,
                env={**os.environ, "PYTHONPATH": "src", "PYTHONHASHSEED": seed},
                cwd=str(Path(__file__).resolve().parent.parent),
            )
            digests.add(result.stdout.strip())
        assert len(digests) == 1

    def test_program_spec_digest_without_pickle(self):
        spec = ProgramSpec.from_app("quickstart", utilisation=0.3)
        same = ProgramSpec.from_app("quickstart", utilisation=0.3)
        other = ProgramSpec.from_app("quickstart", utilisation=0.5)
        assert spec.digest() == same.digest() != other.digest()


class TestPointKeys:
    def test_overlapping_grids_share_keys(self):
        a = Sweep("quickstart").add_axis("scheduler", [BoundedProcessors(1), None])
        b = Sweep("quickstart").add_axis(
            "scheduler", [None, BoundedProcessors(1), BoundedProcessors(4)]
        )
        keys_a = point_keys(a, a.points())
        keys_b = point_keys(b, b.points())
        assert keys_a[0] == keys_b[1]  # BoundedProcessors(1)
        assert keys_a[1] == keys_b[0]  # None
        assert len(set(keys_a + keys_b)) == 3

    def test_duration_is_part_of_the_key(self):
        a = Sweep("quickstart", duration=Fraction(1))
        b = Sweep("quickstart", duration=Fraction(2))
        assert point_key(a, a.points()[0]) != point_key(b, b.points()[0])

    def test_local_runner_has_no_stable_identity(self):
        sweep = Sweep.from_callable(lambda n: {"v": n}).add_axis("n", [1])
        with pytest.raises(SweepConfigError, match="stable identity"):
            point_keys(sweep, sweep.points())

    def test_module_level_runner_is_addressable(self):
        sweep = Sweep.from_callable(_square_point).add_axis("n", [1, 2])
        assert len(set(point_keys(sweep, sweep.points()))) == 2


# ---------------------------------------------------------------------------
# result store
# ---------------------------------------------------------------------------


class TestResultStore:
    def test_put_get_and_counters(self, tmp_path):
        with ResultStore(tmp_path / "store") as store:
            assert store.get("k1") is None
            assert store.put("k1", {"metrics": {"x": 1}})
            assert not store.put("k1", {"metrics": {"x": 999}})  # first wins
            assert store.get("k1") == {"metrics": {"x": 1}}
            assert (store.hits, store.misses, store.writes) == (1, 1, 1)

    def test_reopen_reads_back_through_the_index(self, tmp_path):
        root = tmp_path / "store"
        with ResultStore(root) as store:
            for i in range(20):
                store.put(f"key-{i}", {"metrics": {"i": i}})
        reopened = ResultStore(root)
        assert len(reopened) == 20
        assert reopened.get("key-7") == {"metrics": {"i": 7}}
        # the returned payload is a copy: mutating it cannot poison the cache
        payload = reopened.get("key-7")
        payload["metrics"]["i"] = -1
        assert reopened.get("key-7") == {"metrics": {"i": 7}}

    def test_missing_index_rebuilds_from_segments(self, tmp_path):
        root = tmp_path / "store"
        with ResultStore(root) as store:
            store.put("a", {"metrics": {"v": 1}})
        (root / "index.json").unlink()
        assert ResultStore(root).get("a") == {"metrics": {"v": 1}}

    def test_torn_segment_tail_is_skipped(self, tmp_path):
        root = tmp_path / "store"
        with ResultStore(root) as store:
            store.put("a", {"metrics": {"v": 1}})
            segment = store.segments_dir / store._segment_name
        (root / "index.json").unlink()
        with open(segment, "ab") as handle:
            handle.write(b'{"schema": 1, "key": "b", "payload"')  # SIGKILL here
        reopened = ResultStore(root)
        assert reopened.get("a") == {"metrics": {"v": 1}}
        assert reopened.get("b") is None

    def test_writers_get_distinct_segments(self, tmp_path):
        root = tmp_path / "store"
        with ResultStore(root) as first:
            first.put("a", {"metrics": {}})
        with ResultStore(root) as second:
            second.put("b", {"metrics": {}})
        assert len(list((root / "segments").glob("segment-*.jsonl"))) == 2
        third = ResultStore(root)
        assert "a" in third and "b" in third


# ---------------------------------------------------------------------------
# checkpoints
# ---------------------------------------------------------------------------


class TestCheckpoint:
    def test_fresh_then_resume_roundtrip(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        with SweepCheckpoint(path, name="s", grid="g", points=3) as journal:
            journal.record({"point": 1, "ok": True, "error": None,
                            "params": {}, "metrics": {"v": 1}})
        with SweepCheckpoint(path, name="s", grid="g", points=3) as journal:
            assert set(journal.completed) == {1}
            journal.record({"point": 1, "ok": True, "error": None,
                            "params": {}, "metrics": {"v": 999}})  # no-op
            journal.record({"point": 0, "ok": False, "error": "boom",
                            "params": {}, "metrics": {}})
        with SweepCheckpoint(path, name="s", grid="g", points=3) as journal:
            assert journal.completed[1]["metrics"] == {"v": 1}
            assert journal.completed[0]["error"] == "boom"

    def test_grid_mismatch_refused(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        SweepCheckpoint(path, name="s", grid="g1", points=3).close()
        with pytest.raises(CheckpointMismatchError, match="different sweep"):
            SweepCheckpoint(path, name="s", grid="g2", points=3)
        with pytest.raises(CheckpointMismatchError, match="different sweep"):
            SweepCheckpoint(path, name="s", grid="g1", points=4)

    def test_torn_tail_tolerated(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        with SweepCheckpoint(path, name="s", grid="g", points=3) as journal:
            journal.record({"point": 2, "ok": True, "error": None,
                            "params": {}, "metrics": {}})
        with open(path, "ab") as handle:
            handle.write(b'{"point": 0, "ok": tr')  # killed mid-append
        with SweepCheckpoint(path, name="s", grid="g", points=3) as journal:
            assert set(journal.completed) == {2}

    def test_non_checkpoint_file_refused(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        path.write_text('{"something": "else"}\n')
        with pytest.raises(CheckpointMismatchError, match="header"):
            SweepCheckpoint(path, name="s", grid="g", points=1)


# ---------------------------------------------------------------------------
# the service runner: cache hits, resume, bit-identity
# ---------------------------------------------------------------------------


class TestServiceSweep:
    def test_warm_store_executes_and_compiles_nothing(self, tmp_path, monkeypatch):
        store = tmp_path / "store"
        cold = _quick_sweep().run(store=store)
        assert cold.service_stats == {
            "points": 3, "executed": 3, "store_hits": 0, "resumed": 0,
        }

        import repro.api.sweep as sweep_module

        compiles = []
        original = sweep_module.Program.from_app.__func__

        def counting(cls, app, **params):
            compiles.append(app)
            return original(cls, app, **params)

        monkeypatch.setattr(sweep_module.Program, "from_app", classmethod(counting))
        warm = _quick_sweep().run(store=store)
        assert warm.service_stats == {
            "points": 3, "executed": 0, "store_hits": 3, "resumed": 0,
        }
        assert compiles == []  # cache hits never touch the compiler
        assert warm.to_json() == cold.to_json()

    def test_overlapping_grid_pays_only_for_new_points(self, tmp_path):
        store = tmp_path / "store"
        _quick_sweep().run(store=store)
        widened = (
            Sweep("producer_consumer", duration=Fraction(2))
            .add_axis(
                "scheduler",
                [BoundedProcessors(1), BoundedProcessors(4), BoundedProcessors(2)],
            )
            .run(store=store)
        )
        assert widened.service_stats["store_hits"] == 2
        assert widened.service_stats["executed"] == 1

    def test_checkpoint_resume_is_bit_identical(self, tmp_path):
        clean = _quick_sweep().run(executor="serial").to_json()
        path = tmp_path / "ckpt.jsonl"
        # journal only a prefix of the grid, as an interrupted run would have
        partial = _quick_sweep()
        run_service_sweep(partial, partial.points(), checkpoint=path, subset=[0, 1])
        resumed = _quick_sweep().run(checkpoint=path)
        assert resumed.service_stats == {
            "points": 3, "executed": 1, "store_hits": 0, "resumed": 2,
        }
        assert resumed.to_json() == clean

    def test_failed_points_checkpoint_but_never_store(self, tmp_path):
        def build():
            # an int on the scheduler axis fails that point only
            return (
                Sweep("quickstart", duration=Fraction(1, 100))
                .add_axis("scheduler", [None, 42])
            )

        store = tmp_path / "store"
        path = tmp_path / "ckpt.jsonl"
        first = build().run(store=store, checkpoint=path)
        assert [result.ok for result in first.results] == [True, False]
        again = build().run(store=store, checkpoint=path)
        # the ok point came back from the journal; the failure was journaled
        # too (resume must not flip the report), but the store kept only ok
        assert again.service_stats["resumed"] == 2
        assert len(ResultStore(store)) == 1
        assert again.to_json() == first.to_json()
        # a fresh run against the store alone retries the failed point
        retry = build().run(store=tmp_path / "store")
        assert retry.service_stats == {
            "points": 2, "executed": 1, "store_hits": 1, "resumed": 0,
        }

    def test_store_and_checkpoint_compose(self, tmp_path):
        clean = _quick_sweep().run(executor="serial").to_json()
        report = _quick_sweep().run(
            store=tmp_path / "store", checkpoint=tmp_path / "ckpt.jsonl"
        )
        assert report.to_json() == clean
        # a different checkpoint, same store: all hits, journaled afresh
        second = _quick_sweep().run(
            store=tmp_path / "store", checkpoint=tmp_path / "ckpt2.jsonl"
        )
        assert second.service_stats["store_hits"] == 3
        assert second.to_json() == clean

    def test_thread_backend_checkpoints_safely(self, tmp_path):
        clean = _quick_sweep().run(executor="serial").to_json()
        report = _quick_sweep().run(
            executor="thread", workers=3, checkpoint=tmp_path / "ckpt.jsonl"
        )
        assert report.to_json() == clean
        resumed = _quick_sweep().run(checkpoint=tmp_path / "ckpt.jsonl")
        assert resumed.service_stats["resumed"] == 3
        assert resumed.to_json() == clean

    def test_process_backend_checkpoints_from_the_parent(self, tmp_path):
        sweep = Sweep.from_callable(_square_point).add_axis("n", [1, 2, 3, 4])
        clean = (
            Sweep.from_callable(_square_point).add_axis("n", [1, 2, 3, 4]).run()
        ).to_json()
        report = sweep.run(
            executor="process", workers=2, checkpoint=tmp_path / "ckpt.jsonl"
        )
        assert report.to_json() == clean
        resumed = (
            Sweep.from_callable(_square_point)
            .add_axis("n", [1, 2, 3, 4])
            .run(checkpoint=tmp_path / "ckpt.jsonl")
        )
        assert resumed.service_stats["resumed"] == 4
        assert resumed.to_json() == clean


class TestKillAndResume:
    """A sweep SIGKILLed mid-run resumes bit-identically from its journal."""

    SCRIPT = textwrap.dedent(
        """
        import json, os, signal, sys
        from repro.api.sweep import Sweep

        def point(n):
            if n == 3 and os.environ.get("REPRO_TEST_KILL") == "1":
                os.kill(os.getpid(), signal.SIGKILL)
            return {"value": n * n, "shifted": n + 7}

        sweep = Sweep.from_callable(point, name="killable").add_axis(
            "n", [1, 2, 3, 4, 5]
        )
        mode = sys.argv[1]
        if mode == "clean":
            print(sweep.run(executor="serial").to_json(indent=None))
        else:
            report = sweep.run(executor="serial", checkpoint=sys.argv[2])
            print(json.dumps(report.service_stats))
            print(report.to_json(indent=None))
        """
    )

    def _run(self, *argv, kill=False, cwd):
        env = {**os.environ, "PYTHONPATH": "src"}
        env.pop("REPRO_TEST_KILL", None)
        if kill:
            env["REPRO_TEST_KILL"] = "1"
        return subprocess.run(
            [sys.executable, "-c", self.SCRIPT, *map(str, argv)],
            capture_output=True,
            text=True,
            env=env,
            cwd=cwd,
        )

    def test_sigkill_resume_byte_equal(self, tmp_path):
        repo = str(Path(__file__).resolve().parent.parent)
        checkpoint = tmp_path / "ckpt.jsonl"

        clean = self._run("clean", cwd=repo)
        assert clean.returncode == 0, clean.stderr

        killed = self._run("checkpoint", checkpoint, kill=True, cwd=repo)
        assert killed.returncode == -9  # died by SIGKILL mid-grid
        journaled = checkpoint.read_text().count('"point"')
        assert 0 < journaled < 5  # some rows survived, not all

        resumed = self._run("checkpoint", checkpoint, cwd=repo)
        assert resumed.returncode == 0, resumed.stderr
        stats_line, report_line = resumed.stdout.strip().splitlines()
        stats = json.loads(stats_line)
        assert stats["resumed"] == journaled
        assert stats["executed"] == 5 - journaled
        assert report_line == clean.stdout.strip()


# ---------------------------------------------------------------------------
# sharding + merge
# ---------------------------------------------------------------------------


class TestShardMerge:
    def test_slices_are_balanced_and_total(self):
        sweep = Sweep.from_callable(_square_point).add_axis("n", list(range(10)))
        specs = shard(sweep, 3)
        assert [(s.start, s.stop) for s in specs] == [(0, 3), (3, 6), (6, 10)]
        assert all(spec.grid == specs[0].grid for spec in specs)

    def test_shard_specs_pickle_and_rebuild(self, tmp_path):
        sweep = _quick_sweep()
        spec = pickle.loads(pickle.dumps(shard(sweep, 2)[1]))
        rebuilt = spec.sweep()
        # policies compare by identity, so point equality is meaningless --
        # content-equality of the rebuilt grid is exactly what the digest says
        assert grid_digest(rebuilt, rebuilt.points()) == spec.grid
        assert point_keys(rebuilt, rebuilt.points()) == point_keys(
            sweep, sweep.points()
        )

    def test_shard_run_and_merge_bit_identical(self, tmp_path):
        clean = _quick_sweep().run(executor="serial").to_json()
        paths = []
        for spec in shard(_quick_sweep(), 2):
            path = tmp_path / f"shard-{spec.shard}.jsonl"
            partial = run_shard(spec, checkpoint=path)
            assert len(partial) == spec.stop - spec.start
            paths.append(path)
        merged = merge(_quick_sweep(), paths)
        assert merged.to_json() == clean
        # merge is order-insensitive: checkpoints index by grid position
        assert merge(_quick_sweep(), list(reversed(paths))).to_json() == clean

    def test_shards_share_a_store(self, tmp_path):
        store = tmp_path / "store"
        _quick_sweep().run(store=store)  # pre-warm with the full grid
        for spec in shard(_quick_sweep(), 2):
            report = run_shard(
                spec, checkpoint=tmp_path / f"s{spec.shard}.jsonl", store=store
            )
            assert report.service_stats["executed"] == 0

    def test_incomplete_merge_names_the_gap(self, tmp_path):
        specs = shard(_quick_sweep(), 3)
        path = tmp_path / "only-shard-0.jsonl"
        run_shard(specs[0], checkpoint=path)
        with pytest.raises(CheckpointMismatchError, match="incomplete"):
            merge(_quick_sweep(), [path])

    def test_foreign_checkpoint_refused(self, tmp_path):
        other = Sweep("quickstart", duration=Fraction(1, 100))
        path = tmp_path / "other.jsonl"
        other.run(checkpoint=path)
        with pytest.raises(CheckpointMismatchError, match="different sweep"):
            merge(_quick_sweep(), [path])

    def test_stale_shard_spec_refused(self):
        spec = shard(_quick_sweep(), 2)[0]
        stale = pickle.loads(pickle.dumps(spec))
        object.__setattr__(stale, "grid", "0" * 64)
        with pytest.raises(CheckpointMismatchError, match="digest"):
            run_shard(stale, checkpoint="unused.jsonl")


# ---------------------------------------------------------------------------
# the PAL grid: the paper's experiment, end to end through every service path
# ---------------------------------------------------------------------------


class TestPalGridIdentity:
    """Acceptance: resumed, sharded+merged and cache-served PAL reports are
    bit-identical to a single-shot serial run, and full-cache re-runs
    execute zero points."""

    @staticmethod
    def _pal():
        return Sweep("pal_decoder", duration=Fraction(1, 2)).add_axis(
            "scheduler", [BoundedProcessors(1), BoundedProcessors(2)]
        )

    def test_every_service_path_matches_serial(self, tmp_path):
        clean = self._pal().run(executor="serial", keep_runs=False).to_json()

        # cache-served
        store = tmp_path / "store"
        cold = self._pal().run(store=store, keep_runs=False)
        warm = self._pal().run(store=store, keep_runs=False)
        assert cold.to_json() == clean
        assert warm.to_json() == clean
        assert warm.service_stats["executed"] == 0

        # resumed (prefix journaled, rest executed on resume)
        checkpoint = tmp_path / "ckpt.jsonl"
        prefix = self._pal()
        run_service_sweep(prefix, prefix.points(), checkpoint=checkpoint, subset=[0])
        resumed = self._pal().run(checkpoint=checkpoint, keep_runs=False)
        assert resumed.service_stats["resumed"] == 1
        assert resumed.to_json() == clean

        # sharded + merged (shards also ride the warm store: zero execution)
        paths = []
        for spec in shard(self._pal(), 2):
            path = tmp_path / f"pal-shard-{spec.shard}.jsonl"
            report = run_shard(spec, checkpoint=path, store=store)
            assert report.service_stats["executed"] == 0
            paths.append(path)
        assert merge(self._pal(), paths).to_json() == clean


# ---------------------------------------------------------------------------
# job spool + CLI
# ---------------------------------------------------------------------------


class TestJobQueue:
    def test_submit_run_result_lifecycle(self, tmp_path):
        queue = JobQueue(tmp_path / "spool")
        job = queue.submit(_quick_sweep())
        assert queue.status(job)["state"] == "queued"
        report = queue.run(job)
        status = queue.status(job)
        assert status["state"] == "done"
        assert status["completed"] == 3
        assert queue.result(job).to_json() == report.to_json()

    def test_jobs_share_the_store(self, tmp_path):
        queue = JobQueue(tmp_path / "spool")
        queue.run(queue.submit(_quick_sweep()))
        second = queue.run(queue.submit(_quick_sweep()))
        assert second.service_stats["executed"] == 0
        assert second.service_stats["store_hits"] == 3

    def test_done_job_refuses_rerun_but_unknown_and_early_result_raise(self, tmp_path):
        queue = JobQueue(tmp_path / "spool")
        job = queue.submit(_quick_sweep())
        with pytest.raises(JobError, match="no report yet"):
            queue.result(job)
        queue.run(job)
        with pytest.raises(JobError, match="accepts only"):
            queue.run(job)
        with pytest.raises(JobError, match="unknown job"):
            queue.status("job-999999")

    def test_failed_job_records_error_and_resumes(self, tmp_path):
        queue = JobQueue(tmp_path / "spool")
        # a sweep that cannot even start: scheduler and platform together
        bad = (
            Sweep("quickstart", duration=Fraction(1, 100))
            .add_axis("scheduler", [None])
            .add_axis("platform", [None])
        )
        job = queue.submit(bad)
        with pytest.raises(SweepConfigError):
            queue.run(job)
        status = queue.status(job)
        assert status["state"] == "failed"
        assert "cannot combine" in status["error"]
        with pytest.raises(JobError, match="accepts only"):
            queue.run(job)  # plain run refuses failed jobs; resume accepts


class TestCli:
    SPEC = {
        "app": "producer_consumer",
        "duration": {"$fraction": [2, 1]},
        "axes": {"scheduler": [{"$bounded": 1}, {"$bounded": 2}, "$selftimed"]},
    }

    @staticmethod
    def _main(*argv):
        from repro.service.cli import main

        return main(list(map(str, argv)))

    def test_submit_run_status_flow(self, tmp_path, capsys):
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps(self.SPEC))
        root = tmp_path / "spool"
        assert self._main("--root", root, "submit", spec) == 0
        job = capsys.readouterr().out.strip()
        assert self._main("--root", root, "run", job) == 0
        assert "executed 3" in capsys.readouterr().out
        assert self._main("--root", root, "status") == 0
        assert "done" in capsys.readouterr().out

    def test_shard_run_merge_flow_matches_api(self, tmp_path, capsys):
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps(self.SPEC))
        out = tmp_path / "shards"
        assert self._main("--root", tmp_path, "shard", spec, "-n", 2, "--out", out) == 0
        capsys.readouterr()
        checkpoints = []
        for shard_file in sorted(out.glob("shard-*.pkl")):
            ckpt = tmp_path / f"{shard_file.stem}.jsonl"
            assert (
                self._main(
                    "--root", tmp_path, "run-shard", shard_file, "--checkpoint", ckpt
                )
                == 0
            )
            checkpoints.append(ckpt)
        capsys.readouterr()
        merged = tmp_path / "merged.json"
        assert (
            self._main("--root", tmp_path, "merge", spec, *checkpoints, "--out", merged)
            == 0
        )
        # the CLI-built sweep matches the API-built one bit-for-bit
        clean = (
            Sweep("producer_consumer", duration=Fraction(2))
            .add_axis(
                "scheduler",
                [BoundedProcessors(1), BoundedProcessors(2), SelfTimedUnbounded()],
            )
            .run(executor="serial")
        )
        restored = SweepReport.from_json(merged.read_text())
        assert restored.rows() == clean.rows()
        assert merged.read_text() == clean.to_json()
