"""Tests for the OIL lexer and parser."""

from fractions import Fraction

import pytest

from repro.lang import OilSyntaxError, parse_module, parse_program, tokenize
from repro.lang import ast
from repro.lang.tokens import TokenType


class TestLexer:
    def test_keywords_and_identifiers(self):
        tokens = tokenize("mod seq Foo")
        assert [t.type for t in tokens[:3]] == [TokenType.KW_MOD, TokenType.KW_SEQ, TokenType.IDENT]

    def test_parallel_bars_ascii_and_unicode(self):
        for text in ("A() || B()", "A() ‖ B()"):
            tokens = tokenize(text)
            assert any(t.type is TokenType.PARALLEL for t in tokens)

    def test_numbers(self):
        tokens = tokenize("6.4 25 0")
        assert tokens[0].value == pytest.approx(6.4)
        assert tokens[1].value == 25
        assert tokens[2].value == 0

    def test_comments_skipped(self):
        tokens = tokenize("// line comment\nx /* block */ = 1;")
        types = [t.type for t in tokens]
        assert TokenType.IDENT in types and TokenType.NUMBER in types

    def test_unterminated_block_comment(self):
        with pytest.raises(OilSyntaxError):
            tokenize("/* never closed")

    def test_operators(self):
        tokens = tokenize("== != <= >= < > && !")
        expected = [
            TokenType.EQ,
            TokenType.NEQ,
            TokenType.LE,
            TokenType.GE,
            TokenType.LT,
            TokenType.GT,
            TokenType.AND,
            TokenType.NOT,
        ]
        assert [t.type for t in tokens[: len(expected)]] == expected

    def test_unexpected_character(self):
        with pytest.raises(OilSyntaxError):
            tokenize("x = $;")

    def test_locations(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].location.line == 1
        assert tokens[1].location.line == 2
        assert tokens[1].location.column == 3


class TestParserModules:
    def test_sequential_module(self):
        module = parse_module(
            """
            mod seq M(out int x, int s){
              int y;
              if (s > 0) { y = g(); } else { y = h(); }
              k(y, out x:2);
            }
            """
        )
        assert isinstance(module, ast.SequentialModule)
        assert module.name == "M"
        assert [p.name for p in module.params] == ["x", "s"]
        assert module.params[0].is_output and not module.params[1].is_output
        assert [v.name for v in module.variables] == ["y"]
        assert isinstance(module.body[0], ast.IfStatement)
        call = module.body[1]
        assert isinstance(call, ast.FunctionCall)
        assert isinstance(call.arguments[1], ast.OutArgument)
        assert call.arguments[1].count == 2

    def test_parallel_module_with_declarations(self):
        module = parse_module(
            """
            mod par Top(){
              fifo sample a, b;
              source sample s = src() @ 6.4 MHz;
              sink sample k = snk() @ 32 kHz;
              start k 5 ms before s;
              P(out a) || Q(a, out b) || R(b, out k, s)
            }
            """
        )
        assert isinstance(module, ast.ParallelModule)
        assert [f.name for f in module.fifos] == ["a", "b"]
        assert module.sources[0].frequency_hz == 6_400_000
        assert module.sinks[0].frequency_hz == 32_000
        constraint = module.latency_constraints[0]
        assert constraint.amount_seconds == Fraction(1, 200)
        assert constraint.relation == "before"
        assert [c.module for c in module.calls] == ["P", "Q", "R"]

    def test_anonymous_main(self):
        program = parse_program(
            """
            mod seq S(int x){ loop{ f(x); } while(1); }
            mod par { source int q = gen() @ 1 kHz; S(q) }
            """
        )
        assert program.main is not None
        assert program.main.name == "main"

    def test_main_inferred_from_uninstantiated_module(self):
        program = parse_program(
            """
            mod seq S(int x){ loop{ f(x); } while(1); }
            mod par Top(){ fifo int q; G(out q) || S(q) }
            """
        )
        assert program.main.name == "Top"

    def test_module_lookup(self):
        program = parse_program("mod seq S(int x){ f(x); }")
        assert program.module("S").name == "S"
        with pytest.raises(KeyError):
            program.module("missing")


class TestParserStatements:
    def parse_body(self, body):
        module = parse_module(f"mod seq M(int a, out int b){{ {body} }}")
        return module.body

    def test_loop_while(self):
        (loop,) = self.parse_body("loop{ f(a, out b); } while(1);")
        assert isinstance(loop, ast.LoopStatement)
        assert isinstance(loop.condition, ast.NumberLiteral)

    def test_switch(self):
        (switch,) = self.parse_body(
            "switch(a) case 0 { b = h(); } case 1 { b = g(); } default { b = k(); }"
        )
        assert isinstance(switch, ast.SwitchStatement)
        assert [c.value for c in switch.cases] == [0, 1]
        assert len(switch.default) == 1

    def test_switch_requires_default(self):
        with pytest.raises(OilSyntaxError):
            self.parse_body("switch(a) case 0 { b = h(); }")

    def test_else_if_chain(self):
        (stmt,) = self.parse_body("if (a > 1) { b = f(); } else if (a > 0) { b = g(); } else { b = h(); }")
        assert isinstance(stmt, ast.IfStatement)
        assert isinstance(stmt.else_body[0], ast.IfStatement)

    def test_expression_precedence(self):
        (assign,) = self.parse_body("b = 1 + 2 * a - 3;")
        assert isinstance(assign.expression, ast.BinaryOp)
        assert assign.expression.op == "-"
        assert assign.expression.left.op == "+"
        assert assign.expression.left.right.op == "*"

    def test_stream_read_colon(self):
        (call,) = self.parse_body("f(a:25, out b);")
        read = call.arguments[0].expression
        assert isinstance(read, ast.StreamRead)
        assert read.count == 25

    def test_zero_colon_count_rejected(self):
        with pytest.raises(OilSyntaxError):
            self.parse_body("f(a:0, out b);")

    def test_missing_semicolon(self):
        with pytest.raises(OilSyntaxError):
            self.parse_body("b = f()")

    def test_unknown_statement(self):
        with pytest.raises(OilSyntaxError):
            self.parse_body("loop { f(a, out b); }")  # missing while

    def test_comparison_and_logic(self):
        (stmt,) = self.parse_body("if (a >= 2 and a < 9) { b = f(); } else { b = g(); }")
        assert stmt.condition.op == "and"


class TestParserErrors:
    def test_bad_frequency_unit(self):
        with pytest.raises(OilSyntaxError):
            parse_program("mod par { source int x = f() @ 3 lightyears; }")

    def test_bad_latency_relation(self):
        with pytest.raises(OilSyntaxError):
            parse_program(
                "mod par { source int x = f() @ 1 kHz; sink int y = g() @ 1 kHz;"
                " start x 3 ms near y; }"
            )

    def test_parse_module_requires_single_module(self):
        with pytest.raises(OilSyntaxError):
            parse_module("mod seq A(int x){ f(x); } mod seq B(int x){ f(x); }")

    def test_expected_par_or_seq(self):
        with pytest.raises(OilSyntaxError):
            parse_program("mod serial A(){ }")
