"""Shared fixtures for the test suite.

Compilation and buffer sizing of the larger applications (PAL decoder,
modal pipelines) are comparatively expensive, so they are cached at session
scope; tests must not mutate the returned objects (tests that need to resize
buffers re-compile locally).
"""

from __future__ import annotations

import pytest

from repro.apps.modal_audio import compile_mute, compile_two_mode
from repro.apps.pal_decoder import PalDecoderApp
from repro.apps.producer_consumer import compile_quickstart
from repro.apps.rate_converter import compile_fig2


@pytest.fixture(scope="session")
def pal_app() -> PalDecoderApp:
    return PalDecoderApp(scale=1000)


@pytest.fixture(scope="session")
def pal_compiled(pal_app):
    return pal_app.compile()


@pytest.fixture(scope="session")
def pal_sized(pal_app):
    result = pal_app.compile()
    sizing = result.size_buffers()
    return result, sizing


@pytest.fixture(scope="session")
def quickstart_compiled():
    return compile_quickstart()


@pytest.fixture(scope="session")
def quickstart_sized():
    result = compile_quickstart()
    sizing = result.size_buffers()
    return result, sizing


@pytest.fixture(scope="session")
def mute_sized():
    result = compile_mute()
    sizing = result.size_buffers()
    return result, sizing


@pytest.fixture(scope="session")
def two_mode_sized():
    result = compile_two_mode()
    sizing = result.size_buffers()
    return result, sizing


@pytest.fixture(scope="session")
def fig2_compiled():
    return compile_fig2()
