"""Tests for the DSP kernels (filters, resamplers, mixer, PAL signal)."""

import math

import numpy as np
import pytest

from repro.dsp import (
    Decimator,
    Mixer,
    PALSignalConfig,
    PALSignalGenerator,
    RationalResampler,
    StreamingFIR,
    band_power,
    block_convolve,
    design_lowpass,
    dominant_frequency,
    synthesize_composite,
    synthesize_composite_at,
    tone,
)


class TestFilterDesign:
    def test_unit_dc_gain(self):
        taps = design_lowpass(0.1, 63)
        assert taps.sum() == pytest.approx(1.0)

    def test_passband_and_stopband(self):
        taps = design_lowpass(0.1, 127)
        fir = StreamingFIR(taps)
        n = 4096
        low = tone(0.02, n)
        high = tone(0.4, n)
        out_low = np.asarray(fir.process(list(low)))
        fir.reset()
        out_high = np.asarray(fir.process(list(high)))
        assert np.std(out_low[200:]) > 0.5 * np.std(low)
        assert np.std(out_high[200:]) < 0.05 * np.std(high)

    def test_invalid_cutoff(self):
        with pytest.raises(ValueError):
            design_lowpass(0.7)
        with pytest.raises(ValueError):
            design_lowpass(0.1, 0)


class TestStreamingFIR:
    def test_matches_block_convolution(self):
        taps = design_lowpass(0.2, 21)
        rng = np.random.default_rng(7)
        signal = rng.standard_normal(300)
        fir = StreamingFIR(taps)
        streamed = []
        for start in range(0, 300, 17):
            streamed.extend(fir.process(list(signal[start : start + 17])))
        reference = block_convolve(taps, signal)
        assert np.allclose(streamed, reference)

    def test_scalar_input(self):
        fir = StreamingFIR([1.0])
        assert fir.process(2.5) == [2.5]

    def test_reset_clears_history(self):
        fir = StreamingFIR([0.5, 0.5])
        fir.process([1.0, 1.0])
        fir.reset()
        assert fir.process([0.0]) == [0.0]

    def test_empty_taps_rejected(self):
        with pytest.raises(ValueError):
            StreamingFIR([])


class TestResampling:
    def test_decimator_block_counts(self):
        dec = Decimator(25)
        out = dec.process([1.0] * 25)
        assert len(out) == 1

    def test_rational_resampler_block_counts(self):
        resampler = RationalResampler(10, 16)
        for _ in range(5):
            out = resampler.process([0.5] * 16)
            assert len(out) == 10

    def test_resampler_preserves_tone_frequency(self):
        resampler = RationalResampler(10, 16, num_taps=127)
        signal = tone(0.02, 16 * 200)
        output = []
        for start in range(0, signal.size, 16):
            output.extend(resampler.process(list(signal[start : start + 16])))
        measured = dominant_frequency(output[300:])
        assert measured == pytest.approx(0.02 * 16 / 10, rel=0.05)

    def test_decimator_removes_aliases(self):
        dec = Decimator(4, num_taps=127)
        # A tone above the post-decimation Nyquist must be attenuated.
        signal = tone(0.2, 4 * 500)
        output = []
        for start in range(0, signal.size, 4):
            output.extend(dec.process(list(signal[start : start + 4])))
        assert np.std(output[100:]) < 0.1

    def test_invalid_factors(self):
        with pytest.raises(ValueError):
            RationalResampler(0, 4)
        with pytest.raises(ValueError):
            Decimator(0)


class TestMixer:
    def test_shifts_carrier_to_baseband(self):
        carrier = 0.3
        modulation = 0.01
        n = 4096
        samples = (1 + 0.5 * tone(modulation, n)) * tone(carrier, n)
        mixer = Mixer(carrier)
        mixed = mixer.process(list(samples))
        fir = StreamingFIR(design_lowpass(0.05, 127))
        baseband = fir.process(mixed)
        assert dominant_frequency(baseband[300:]) == pytest.approx(modulation, rel=0.1)

    def test_phase_continuity_across_blocks(self):
        mixer_a = Mixer(0.123)
        mixer_b = Mixer(0.123)
        signal = list(tone(0.05, 64))
        whole = mixer_a.process(signal)
        parts = mixer_b.process(signal[:20]) + mixer_b.process(signal[20:])
        assert np.allclose(whole, parts)

    def test_band_power(self):
        signal = tone(0.1, 2048)
        assert band_power(signal, 0.08, 0.12) > 0.9
        assert band_power(signal, 0.3, 0.5) < 0.05


class TestPALSignal:
    def test_contains_video_and_audio_bands(self):
        config = PALSignalConfig(noise_amplitude=0.0)
        signal = synthesize_composite(config, 8192)
        assert band_power(signal, 0.0, 0.1) > 0.3          # video band
        assert band_power(signal, 0.3, 0.4) > 0.1          # audio carrier band

    def test_generator_matches_batch_synthesis(self):
        config = PALSignalConfig(noise_amplitude=0.0)
        generator = PALSignalGenerator(config, block=64)
        streamed = [next(generator) for _ in range(256)]
        batch = synthesize_composite(config, 256)
        assert np.allclose(streamed, batch)

    def test_synthesize_at_is_phase_continuous(self):
        config = PALSignalConfig(noise_amplitude=0.0)
        whole = synthesize_composite(config, 200)
        parts = np.concatenate(
            [synthesize_composite_at(config, 0, 120), synthesize_composite_at(config, 120, 80)]
        )
        assert np.allclose(whole, parts)

    def test_dominant_frequency_detects_tone(self):
        assert dominant_frequency(tone(0.07, 2048)) == pytest.approx(0.07, abs=0.002)
