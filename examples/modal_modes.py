#!/usr/bin/env python3
"""Modal multi-rate applications: control behaviour inside the analysis.

Two applications demonstrate the paper's central point -- that modes
(data-dependent control behaviour) can be expressed in the sequential part of
an OIL program while the derived CTA model remains analysable:

1. the *mute* pipeline: an ``if``/``else`` inside the streaming loop decides
   per block whether to emit the processed value or silence (the Fig. 4
   pattern: guarded statements become unconditionally executing tasks),
2. the *two-mode* pipeline: a calibration loop and a processing loop in
   sequence (the Fig. 3 / Fig. 9 pattern: each while-loop becomes its own CTA
   component and both access the source and sink, so the periodic constraints
   hold regardless of the mode sequence).

For both, the example derives the CTA model, sizes the buffers and then runs
adversarial mode sequences in the simulator, showing that the analysis
results (rates, buffer capacities) are never violated no matter which mode is
active.

Run with:  python examples/modal_modes.py
"""

from fractions import Fraction

from repro.apps.modal_audio import (
    MUTE_OIL_SOURCE,
    TWO_MODE_OIL_SOURCE,
    compile_mute,
    compile_two_mode,
    simulate_mute,
    simulate_two_mode,
)
from repro.core import buffer_report


def run_mute() -> None:
    print("=== Mute pipeline (if/else mode inside one loop) ===")
    print(MUTE_OIL_SOURCE.strip())
    result = compile_mute()
    sizing = result.size_buffers()
    print(buffer_report(sizing.capacities))

    # A signal that alternates between good reception (positive level) and bad
    # reception (negative level) every 20 ms.
    block = [1.0] * 160 + [-1.0] * 160
    simulation, trace = simulate_mute(Fraction(1, 5), block * 50, result=result, sizing=sizing)
    speaker = simulation.sinks["speaker"].consumed
    print(f"deadline violations: {trace.deadline_miss_count()}")
    print(f"speaker rate: {float(trace.measured_rate('speaker')):.1f} Hz (declared 2000 Hz)")
    muted = sum(1 for v in speaker if v == 0.0)
    print(f"speaker samples: {len(speaker)} ({muted} muted, {len(speaker) - muted} active)\n")


def run_two_mode() -> None:
    print("=== Two-mode pipeline (two while-loops) ===")
    print(TWO_MODE_OIL_SOURCE.strip())
    result = compile_two_mode()
    sizing = result.size_buffers()
    print(buffer_report(sizing.capacities))

    for schedule in [(("loop0", 1), ("loop1", 1)), (("loop0", 3), ("loop1", 5)), (("loop0", 7), ("loop1", 2))]:
        simulation, trace = simulate_two_mode(
            Fraction(1, 10), mode_schedule=schedule, result=result, sizing=sizing
        )
        dac = simulation.sinks["dac"].consumed
        calibration = sum(1 for v in dac if v >= 50.0)
        print(
            f"mode schedule {schedule}: {trace.deadline_miss_count()} violations, "
            f"dac rate {float(trace.measured_rate('dac')):.1f} Hz, "
            f"{calibration}/{len(dac)} calibration-mode samples"
        )


def main() -> None:
    run_mute()
    run_two_mode()


if __name__ == "__main__":
    main()
