#!/usr/bin/env python3
"""Modal multi-rate applications, through the repro.api facade.

Two applications demonstrate the paper's central point -- that modes
(data-dependent control behaviour) can be expressed in the sequential part of
an OIL program while the derived CTA model remains analysable:

1. the *mute* pipeline: an ``if``/``else`` inside the streaming loop decides
   per block whether to emit the processed value or silence (the Fig. 4
   pattern: guarded statements become unconditionally executing tasks),
2. the *two-mode* pipeline: a calibration loop and a processing loop in
   sequence (the Fig. 3 / Fig. 9 pattern: each while-loop becomes its own CTA
   component, so the periodic constraints hold regardless of the mode
   sequence).

For both, the example derives the analysis once and runs adversarial mode
sequences -- the two-mode schedules as a mode-schedule Sweep -- showing that
the analysis results (rates, buffer capacities) are never violated no matter
which mode is active.

Run with:  python examples/modal_modes.py
"""

from fractions import Fraction

from repro.api import Program, Sweep


def run_mute() -> None:
    print("=== Mute pipeline (if/else mode inside one loop) ===")
    program = Program.from_app(
        "modal_mute", signal=([1.0] * 160 + [-1.0] * 160) * 50
    )
    print(program.source.strip())
    analysis = program.analyze()
    print(analysis.report())

    run = analysis.run(Fraction(1, 5))
    speaker = run.sink("speaker")
    muted = sum(1 for v in speaker if v == 0.0)
    print(f"deadline violations: {run.deadline_misses}")
    print(f"speaker rate: {float(run.measured_rates['speaker']):.1f} Hz (declared 2000 Hz)")
    print(f"speaker samples: {len(speaker)} ({muted} muted, {len(speaker) - muted} active)\n")


def run_two_mode() -> None:
    print("=== Two-mode pipeline (two while-loops) ===")
    program = Program.from_app("modal_two_mode")
    print(program.source.strip())
    analysis = program.analyze()
    print(analysis.report())

    schedules = [
        (("loop0", 1), ("loop1", 1)),
        (("loop0", 3), ("loop1", 5)),
        (("loop0", 7), ("loop1", 2)),
    ]
    report = (
        Sweep(program=program, duration=Fraction(1, 10), name="two-mode schedules")
        .add_axis("mode_schedules", [{"TwoMode": list(s)} for s in schedules])
        .run(workers=2)
    )
    print(report.table(columns=[
        "mode_schedules", "deadline_misses", "rate[dac]", "occupancy_ok",
    ]))
    for result in report:
        dac = result.run.sink("dac")
        calibration = sum(1 for v in dac if v >= 50.0)
        print(f"  {result.params['mode_schedules']['TwoMode']}: "
              f"{calibration}/{len(dac)} calibration-mode samples")


def main() -> None:
    run_mute()
    run_two_mode()


if __name__ == "__main__":
    main()
