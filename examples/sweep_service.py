#!/usr/bin/env python3
"""The sweep service: cached, resumable, shardable parameter grids.

The paper's experiments are all parameter sweeps, and real use re-runs
them constantly -- the same grid after a code tweak elsewhere, a widened
axis, a run that a timeout killed at point 70k of 100k.  The sweep
service (``repro.service``) makes each of those cheap:

1. **content-addressed store** -- every point's metric row is persisted
   under a stable content digest, so a repeated run executes nothing and
   an overlapping grid pays only for the new points;
2. **checkpoint/resume** -- completed rows are journaled as they finish;
   a killed run resumes bit-identically;
3. **shard/merge** -- the grid splits into self-contained shard specs
   that independent processes execute, merged back bit-identically;
4. **job spool** -- submit/status/run/result over a directory, the same
   flow as ``python -m repro sweep`` on the command line.

Run with:  python examples/sweep_service.py
"""

import tempfile
from fractions import Fraction
from pathlib import Path

from repro.api import Sweep
from repro.engine import BoundedProcessors
from repro.service import JobQueue, merge, run_shard, shard


def build_sweep() -> Sweep:
    """The Fig. 4 shape: throughput of the pipeline vs processor count."""
    return Sweep("producer_consumer", duration=Fraction(2)).add_axis(
        "scheduler", [BoundedProcessors(1), BoundedProcessors(2), None]
    )


def demo_store(root: Path) -> str:
    print("=== Content-addressed store: pay for each point once ===")
    store = root / "store"
    cold = build_sweep().run(store=store)
    print(f"cold run : {cold.service_stats}")
    warm = build_sweep().run(store=store)
    print(f"warm run : {warm.service_stats}  (no compilation, no execution)")
    widened = (
        Sweep("producer_consumer", duration=Fraction(2))
        .add_axis(
            "scheduler",
            [BoundedProcessors(1), BoundedProcessors(2), BoundedProcessors(4), None],
        )
        .run(store=store)
    )
    print(f"widened  : {widened.service_stats}  (only the new point ran)")
    assert warm.to_json() == cold.to_json()
    assert warm.service_stats["executed"] == 0
    print()
    return cold.to_json()


def demo_resume(root: Path, clean_json: str) -> None:
    print("=== Checkpoint/resume: a killed sweep picks up where it died ===")
    from repro.service.runner import run_service_sweep

    checkpoint = root / "interrupted.jsonl"
    # Simulate the interruption: journal only the first point, the way a
    # killed run leaves the file (tests/test_sweep_service.py kills a real
    # subprocess with SIGKILL to prove the same thing end-to-end).
    partial = build_sweep()
    run_service_sweep(partial, partial.points(), checkpoint=checkpoint, subset=[0])
    resumed = build_sweep().run(checkpoint=checkpoint)
    print(f"resumed  : {resumed.service_stats}")
    assert resumed.to_json() == clean_json, "resume must be bit-identical"
    print("resumed report is bit-identical to an uninterrupted run")
    print()


def demo_shard_merge(root: Path, clean_json: str) -> None:
    print("=== Shard + merge: independent slices, one report ===")
    checkpoints = []
    for spec in shard(build_sweep(), 2):
        path = root / f"shard-{spec.shard}.jsonl"
        report = run_shard(spec, checkpoint=path)
        print(
            f"shard {spec.shard}/{spec.of}: points [{spec.start}, {spec.stop}) "
            f"-> {len(report)} rows"
        )
        checkpoints.append(path)
    merged = merge(build_sweep(), checkpoints)
    assert merged.to_json() == clean_json, "merge must be bit-identical"
    print("merged report is bit-identical to a single-shot serial run")
    print(merged.table(["point", "scheduler", "completed_firings"]))
    print()


def demo_jobs(root: Path) -> None:
    print("=== Job spool: the `python -m repro sweep` flow, in-process ===")
    queue = JobQueue(root / "spool")
    job = queue.submit(build_sweep())
    print(f"submitted {job}: {queue.status(job)['state']}")
    queue.run(job)
    status = queue.status(job)
    print(
        f"finished  {job}: {status['state']}, "
        f"{status['completed']}/{status['points']} points"
    )
    # a second identical job is served entirely from the shared store
    second = queue.submit(build_sweep())
    report = queue.run(second)
    print(f"repeat    {second}: {report.service_stats}")
    assert report.service_stats["executed"] == 0
    assert queue.result(second).rows() == queue.result(job).rows()
    print()


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-sweep-service-") as tmp:
        root = Path(tmp)
        clean_json = demo_store(root)
        demo_resume(root, clean_json)
        demo_shard_merge(root, clean_json)
        demo_jobs(root)
    print("sweep service demo OK")


if __name__ == "__main__":
    main()
