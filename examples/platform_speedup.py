#!/usr/bin/env python3
"""Heterogeneous platforms and preemptive scheduling through the facade.

A walkthrough of the platform subsystem (``repro.platform``) on the
quickstart pipeline and the PAL decoder:

1. the same program on homogeneous platforms of growing width (the Fig. 4
   speedup axis, now with per-processor utilisation accounting),
2. an asymmetric ``1 fast + N slow`` platform swept through ``repro.api.
   Sweep`` -- platforms are plain picklable data, so the same grid runs on
   the multi-core process backend unchanged,
3. preemptive fixed-priority scheduling, where a high-priority task can
   suspend a lower-priority firing mid-flight (the engine re-posts the
   exact remaining work on resume).

Run with:  python examples/platform_speedup.py
"""

from fractions import Fraction

from repro.api import Program, Sweep
from repro.platform import FixedPriorityPreemptive, Platform

#: Simulated seconds per run.
DURATION = Fraction(1, 2)


def homogeneous_utilisation() -> None:
    print("=== quickstart on homogeneous platforms (per-processor accounting) ===")
    analysis = Program.from_app("quickstart").analyze()
    for count in (1, 2):
        run = analysis.run(DURATION, platform=Platform.homogeneous(count))
        utilisation = ", ".join(
            f"{name} {value:.1%}" for name, value in run.processor_utilisation().items()
        )
        print(
            f"  {count} processor(s): {run.completed_firings} firings, "
            f"{run.deadline_misses} misses, busy [{utilisation}]"
        )


def heterogeneous_sweep() -> None:
    print("\n=== PAL decoder on 1 fast + N slow processors (sweep axis) ===")
    platforms = [
        Platform.heterogeneous([2] + [1] * slow, name=f"1fast+{slow}slow")
        for slow in (1, 2, 4)
    ]
    report = (
        Sweep("pal_decoder", duration=Fraction(1, 10), name="pal-platforms")
        .add_axis("platform", platforms)
        .run(executor="process", workers=2)
    )
    print(
        report.table(
            columns=["platform", "completed_firings", "deadline_misses", "util[p0]", "util[p1]"]
        )
    )
    if report.warnings:
        print("warnings:", report.warnings)


def preemptive_priorities() -> None:
    print("\n=== preemptive fixed priorities on the PAL decoder ===")
    analysis = Program.from_app("pal_decoder", scale=1000).analyze()
    run = None
    for count in (1, 2):
        run = analysis.run(
            Fraction(1, 10),
            scheduler=FixedPriorityPreemptive(Platform.homogeneous(count)),
        )
        print(
            f"  {count} processor(s): {run.completed_firings} firings, "
            f"{run.preemptions} preemptions, {run.deadline_misses} misses"
        )
    # The decoder's task set genuinely contends: high-priority
    # (extraction-order) tasks suspend in-flight lower-priority firings,
    # and the engine re-posts the exact remaining work on resume.
    assert run is not None and run.preemptions > 0
    # Data semantics are untouched by preemption -- on the quickstart
    # pipeline (which keeps every deadline on one processor) the sink
    # values match the self-timed reference run value for value.
    quick = Program.from_app("quickstart").analyze()
    preempted = quick.run(
        DURATION, scheduler=FixedPriorityPreemptive(Platform.homogeneous(1))
    )
    assert preempted.sink("averages") == quick.run(DURATION).sink("averages")
    print("  quickstart sink values identical to the self-timed reference run")


def main() -> None:
    homogeneous_utilisation()
    heterogeneous_sweep()
    preemptive_priorities()


if __name__ == "__main__":
    main()
