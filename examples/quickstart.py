#!/usr/bin/env python3
"""Quickstart: the complete OIL pipeline through the repro.api facade.

A 2 kHz sensor feeds a pair-averaging module writing a 1 kHz log sink with a
10 ms latency constraint.  Program -> Analysis (consistency, rates, buffer
sizes, latency) -> RunResult (trace, deadline misses, sink samples).

Run with:  python examples/quickstart.py
"""

from fractions import Fraction

from repro.api import Program

program = Program.from_app("quickstart")
print(program.source.strip())

analysis = program.analyze()
print("\n" + analysis.report())

run = analysis.run(Fraction(1))
print("\n" + run.summary())
print(f"first five logged averages: {run.sink('averages')[:5]}")
