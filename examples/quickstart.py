#!/usr/bin/env python3
"""Quickstart: compile, analyse and execute a small multi-rate OIL program.

The application is a 2:1 downsampling pipeline: a 2 kHz sensor source feeds a
sequential module that averages pairs of samples and writes the result to a
1 kHz logging sink, with a 10 ms end-to-end latency constraint.

The script walks through the complete pipeline of the paper:

1. parse + validate the OIL program,
2. derive the CTA model,
3. check consistency (rates achievable?) and compute sufficient buffer sizes,
4. verify the latency constraints,
5. execute the program in the discrete-event runtime and check that the
   measured behaviour respects the analysis results.

Run with:  python examples/quickstart.py
"""

from fractions import Fraction

from repro.apps.producer_consumer import (
    QUICKSTART_OIL_SOURCE,
    compile_quickstart,
    quickstart_registry,
    simulate_quickstart,
)
from repro.core import buffer_report, latency_report
from repro.util.units import Frequency


def main() -> None:
    print("=== OIL program ===")
    print(QUICKSTART_OIL_SOURCE.strip())

    # 1-2. Parse, validate and derive the CTA model.
    result = compile_quickstart()
    print("\n=== Derived CTA model ===")
    print(result.model.summary())

    # 3. Consistency: are the declared source/sink rates achievable?
    consistency = result.check_consistency(assume_infinite_unsized=True)
    print("\n=== Consistency (unbounded buffers) ===")
    print(f"consistent: {consistency.consistent}")
    for name, port in result.source_ports.items():
        print(f"  source {name}: {Frequency(consistency.port_rates[port])}")
    for name, port in result.sink_ports.items():
        print(f"  sink   {name}: {Frequency(consistency.port_rates[port])}")

    # Buffer sizing: smallest capacities for which the model stays consistent.
    sizing = result.size_buffers()
    print("\n=== Buffer sizing ===")
    print(buffer_report(sizing.capacities))

    # 4. Latency constraints.
    checks = result.verify_latency(sizing.consistency)
    print("\n=== Latency constraints ===")
    print(latency_report(checks))

    # 5. Execute the program for one second of simulated time.
    simulation, trace = simulate_quickstart(Fraction(1), result=result, sizing=sizing)
    print("\n=== Simulation (1 s) ===")
    print(trace.summary())
    print(f"deadline violations: {trace.deadline_miss_count()}")
    print(f"first five logged averages: {simulation.sinks['averages'].consumed[:5]}")


if __name__ == "__main__":
    main()
