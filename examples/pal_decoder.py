#!/usr/bin/env python3
"""The PAL video decoder case study (Sec. VI, Figs. 11 and 12).

Compiles the Fig. 11 OIL program, derives the Fig. 12 CTA model, verifies
rates (6.4 MS/s RF input, 4 MS/s video output, 32 kHz audio output), sizes
the buffers, checks the audio/video synchronisation constraint and finally
decodes a synthetic RF signal in the discrete-event runtime, reporting the
recovered audio tone and the measured sink rates.

All declared frequencies are divided by ``SCALE`` so the functional simulation
finishes in seconds of wall-clock time; the rate *ratios* (25, 10/16, 8) and
hence the structure of the derived CTA model are identical to the full-rate
decoder.

Run with:  python examples/pal_decoder.py
"""

from fractions import Fraction

from repro.apps.pal_decoder import PalDecoderApp
from repro.core import buffer_report, latency_report
from repro.dsp import dominant_frequency
from repro.util.units import Frequency

#: All rates divided by this factor for the functional simulation.
SCALE = 1000
#: Simulated time (seconds).
DURATION = Fraction(2)


def main() -> None:
    app = PalDecoderApp(scale=SCALE)
    print("=== OIL program (Fig. 11, scaled) ===")
    print(app.source_text().strip())

    result = app.compile()
    print("\n=== Derived CTA model (Fig. 12) ===")
    print(result.model.summary())

    consistency = result.check_consistency(assume_infinite_unsized=True)
    print("\n=== Rates ===")
    print(f"consistent: {consistency.consistent}")
    for name, port in result.source_ports.items():
        print(f"  source {name}: {Frequency(consistency.port_rates[port])}")
    for name, port in result.sink_ports.items():
        print(f"  sink   {name}: {Frequency(consistency.port_rates[port])}")

    sizing = result.size_buffers()
    print("\n=== Buffer sizing ===")
    print(buffer_report(sizing.capacities))

    checks = result.verify_latency(sizing.consistency)
    print("\n=== Audio/video synchronisation ===")
    print(latency_report(checks))

    print(f"\n=== Simulation ({float(DURATION)} s of scaled time) ===")
    simulation, trace = app.simulate(DURATION, result=result, sizing=sizing)
    print(trace.summary())
    print(f"deadline violations: {trace.deadline_miss_count()}")

    audio = simulation.sinks["speakers"].consumed
    video = simulation.sinks["screen"].consumed
    if len(audio) > 16:
        recovered = dominant_frequency(audio[8:])
        expected = app.signal.audio_tone * 25 * 8  # decimation by 200 overall
        print(f"recovered audio tone: {recovered:.4f} of the audio rate "
              f"(expected {expected:.4f})")
    if len(video) > 128:
        recovered = dominant_frequency(video[64:])
        expected = app.signal.video_tones[0] * 16 / 10
        print(f"dominant video tone:  {recovered:.4f} of the video rate "
              f"(expected {expected:.4f})")
    print(f"buffer high-water marks vs capacities:")
    for name, mark in sorted(trace.buffer_high_water.items()):
        capacity = simulation.buffers[name].capacity
        print(f"  {name}: {mark} / {capacity}")


if __name__ == "__main__":
    main()
