#!/usr/bin/env python3
"""The PAL video decoder case study (Sec. VI, Figs. 11 and 12), through the
repro.api facade -- including a bounded-processor scenario sweep.

Compiles the Fig. 11 OIL program, derives the Fig. 12 CTA model, verifies
rates (6.4 MS/s RF input, 4 MS/s video output, 32 kHz audio output), sizes
the buffers, checks the audio/video synchronisation constraint and decodes a
synthetic RF signal in the discrete-event runtime, reporting the recovered
audio tone and the measured sink rates.  A :class:`repro.api.Sweep` then
re-runs the decoder on 1..4 processors (Fig. 4 scenario axis) with parallel
workers and aggregated reporting.

All declared frequencies are divided by ``SCALE`` so the functional
simulation finishes in seconds of wall-clock time; the rate *ratios* (25,
10/16, 8) and hence the derived CTA model are identical to the full-rate
decoder.

Run with:  python examples/pal_decoder.py
"""

from fractions import Fraction

from repro.api import Program, Sweep
from repro.dsp import dominant_frequency
from repro.dsp.pal import PALSignalConfig
from repro.engine import BoundedProcessors

#: All rates divided by this factor for the functional simulation.
SCALE = 1000
#: Simulated time (seconds).
DURATION = Fraction(2)


def main() -> None:
    program = Program.from_app("pal_decoder", scale=SCALE)
    print("=== OIL program (Fig. 11, scaled) ===")
    print(program.source.strip())

    analysis = program.analyze()
    print("\n" + analysis.report())

    print(f"\n=== Simulation ({float(DURATION)} s of scaled time) ===")
    run = analysis.run(DURATION)
    print(run.summary())

    signal = PALSignalConfig()
    audio = run.sink("speakers")
    video = run.sink("screen")
    if len(audio) > 16:
        recovered = dominant_frequency(audio[8:])
        expected = signal.audio_tone * 25 * 8  # decimation by 200 overall
        print(f"recovered audio tone: {recovered:.4f} of the audio rate "
              f"(expected {expected:.4f})")
    if len(video) > 128:
        recovered = dominant_frequency(video[64:])
        expected = signal.video_tones[0] * 16 / 10
        print(f"dominant video tone:  {recovered:.4f} of the video rate "
              f"(expected {expected:.4f})")
    print("buffer high-water marks vs capacities:")
    for name, mark in sorted(run.trace.buffer_high_water.items()):
        print(f"  {name}: {mark} / {run.simulation.buffers[name].capacity}")

    print("\n=== Scenario sweep: decoding on 1..4 processors (Fig. 4 axis) ===")
    report = (
        Sweep(program=program, duration=Fraction(1, 4))
        .add_axis("scheduler", [BoundedProcessors(n) for n in (1, 2, 3, 4)])
        .run(workers=2)
    )
    print(report.table(columns=[
        "scheduler", "deadline_misses", "completed_firings", "occupancy_ok",
    ]))
    speedups = [row["speedup"] for row in report.speedup_table()]
    print(f"throughput speedup vs 1 processor: {speedups}")


if __name__ == "__main__":
    main()
