#!/usr/bin/env python3
"""Rate conversion (Fig. 2) and the analysis-scaling comparison.

Part 1 reproduces the Sec. III motivation: the same cyclic rate-converting
application written (a) as a sequential program -- whose length is the full
static-order schedule -- and (b) as an OIL program with one call per function.
It also reports a conservativeness finding of the reproduction: the strictly
periodic CTA abstraction needs 6 initial values where self-timed execution
(exact SDF analysis) needs only the paper's 4.

Part 2 *executes* the cyclic program end-to-end through the repro.api facade
-- possible since the runtime retires one-shot ``init`` producer windows, so
the initial values become visible to ``tf`` before ``tg`` ever fires -- and
checks the measured 2:3 firing ratio.

Part 3 runs the scaling comparison behind the paper's complexity claims:
polynomial CTA analysis vs. the exact SDF route whose HSDF expansion grows
with the repetition vector.

Run with:  python examples/rate_conversion_and_scaling.py
"""

from fractions import Fraction

from repro.api import Program
from repro.apps.rate_converter import (
    FIG2_OIL_SOURCE,
    compare_specifications,
    fig2_task_graph,
    minimal_initial_tokens_for_cta,
    sequential_program_text,
)
from repro.baselines import compare_scaling, format_comparison, schedule_growth
from repro.dataflow import sdf_throughput, self_timed_statespace


def part1_rate_conversion() -> None:
    print("=== Fig. 2b: the sequential formulation (explicit schedule) ===")
    print(sequential_program_text())
    print("\n=== Fig. 2c: the OIL formulation ===")
    print(FIG2_OIL_SOURCE.strip())

    comparison = compare_specifications()
    print(
        f"\nrepetition vector: {comparison.repetition_vector} "
        f"(tg executes {comparison.repetition_vector['tg']}/{comparison.repetition_vector['tf']}x "
        "as often as tf)"
    )
    print(
        f"schedule length {comparison.schedule_length} firings -> "
        f"{comparison.sequential_statement_count} sequential statements vs "
        f"{comparison.oil_function_calls} OIL function calls"
    )

    graph = fig2_task_graph()
    exact = sdf_throughput(graph)
    statespace = self_timed_statespace(graph)
    print(f"exact SDF iteration period: {exact.iteration_period} s "
          f"(state-space: {statespace.iteration_period} s)")

    minimal = minimal_initial_tokens_for_cta()
    print(
        f"initial values: self-timed execution needs 4 (the paper's example); the strictly "
        f"periodic CTA abstraction is conservative and needs {minimal}"
    )

    print("\nschedule growth for other rate pairs (sequential statements vs OIL statements):")
    for row in schedule_growth([(3, 2), (5, 4), (7, 5), (16, 10), (25, 16)]):
        print(
            f"  {row.produce}:{row.consume}  schedule={row.schedule_length:3d}  "
            f"sequential={row.sequential_statements:3d}  oil={row.oil_statements}  "
            f"(x{row.growth_factor:.1f})"
        )


def part2_execute() -> None:
    print("\n=== Fig. 2c executed: self-timed in the discrete-event runtime ===")
    analysis = Program.from_app("rate_converter").analyze()
    print(f"CTA buffer capacities: {analysis.capacities}")
    run = analysis.run(Fraction(1, 10))
    firings = {"t_f": 0, "t_g": 0}
    for firing in run.trace.firings:
        name = firing.task.rsplit(":", 1)[-1]
        if name in firings:
            firings[name] += 1
    print(f"firings in 0.1 s: f={firings['t_f']}, g={firings['t_g']} "
          f"(repetition vector 2:3), occupancy ok: {run.occupancy_ok}")


def part3_scaling() -> None:
    print("\n=== Analysis scaling: polynomial CTA vs exact SDF ===")
    rows = compare_scaling([1, 2, 3, 4, 5, 6], rate=2, base_hz=1 << 12)
    print(format_comparison(rows))
    print("(the HSDF expansion grows with the repetition vector -- exponential in the "
          "pipeline depth -- while the CTA model grows linearly)")


def main() -> None:
    part1_rate_conversion()
    part2_execute()
    part3_scaling()


if __name__ == "__main__":
    main()
