"""Legacy setup shim.

The project metadata lives in ``pyproject.toml``; this file exists so that the
package can be installed in editable mode on machines without network access
(where PEP 517 build isolation cannot download its build requirements)::

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
