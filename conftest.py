"""Repository-level pytest configuration.

Ensures the ``src`` layout is importable even when the package has not been
installed (e.g. on an offline machine where editable installation is not
possible).  When the package *is* installed this is a harmless no-op because
the installed location takes precedence only if it appears earlier on
``sys.path`` -- both point at the same files for an editable install.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
