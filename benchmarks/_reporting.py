"""Uniform table printing for the reproduced figures/experiments.

Besides the human-readable tables, every table is optionally recorded in
machine-readable form: when the ``BENCH_REPORT_JSON`` environment variable
names a file, each printed table is appended to it as one JSON line
(``{"title", "header", "rows"}``).  CI uploads that file as a workflow
artifact so the performance trajectory survives log expiry.
"""

from __future__ import annotations

import json
import os
from typing import List, Sequence


def _json_cell(value: object) -> object:
    """A cell as a JSON-native value (numbers stay numbers, rest stringifies)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


def record_table(title: str, header: Sequence[object], rows: Sequence[Sequence[object]]) -> None:
    """Append the table as one JSON line to ``$BENCH_REPORT_JSON``, if set."""
    path = os.environ.get("BENCH_REPORT_JSON")
    if not path:
        return
    entry = {
        "title": title,
        "header": [str(column) for column in header],
        "rows": [[_json_cell(cell) for cell in row] for row in rows],
    }
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry) + "\n")


def print_table(title: str, header: Sequence[object], rows: Sequence[Sequence[object]]) -> None:
    """Print a small aligned text table with a title (and record it)."""
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(h)), max((len(str(r[i])) for r in rows), default=0))
        for i, h in enumerate(header)
    ]
    print("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    record_table(title, header, rows)
