"""Uniform table printing for the reproduced figures/experiments."""

from __future__ import annotations

from typing import List, Sequence


def print_table(title: str, header: Sequence[object], rows: Sequence[Sequence[object]]) -> None:
    """Print a small aligned text table with a title."""
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(h)), max((len(str(r[i])) for r in rows), default=0))
        for i, h in enumerate(header)
    ]
    print("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
