"""Dispatch throughput of the execution engine on a 200-task program.

The seed simulator dispatched by brute force: every buffer change triggered a
rescan of the whole task fleet (repeated to a fixpoint), and every
eligibility check recomputed ``min()`` over all buffer windows.  The engine
refactor replaced both -- cached window floors plus dependency-indexed
ready-set dispatch -- and this microbenchmark records what that is worth on a
dispatch-bound workload, so future PRs can track engine throughput.

Workload: a 200-task ring with 8 circulating tokens and staggered response
times, i.e. (almost) every firing triggers its own dispatch round while ~192
tasks are ineligible at any instant -- the regime where per-event dispatch
cost dominates.  Tracing is off (the engine's configurable trace levels exist
for exactly this).  Four configurations are measured:

1. the seed-faithful reference: polling dispatch over buffers that recompute
   their window aggregates on every check,
2. polling dispatch over cached-floor buffers (isolates the caching gain),
3. the indexed ready-set engine (the default execution path),
4. the ready-set engine with the compiled integer dispatch kernel built at
   ``wire_buffers`` time (``kernel="on"``).

The equivalence tests (tests/test_engine.py) separately assert that all
configurations produce bit-identical traces; here only throughput differs.
"""

from __future__ import annotations

import os
import time

from _reporting import print_table

from repro.engine import ring_program, run_tasks
from repro.graph.circular_buffer import CircularBuffer
from repro.runtime.trace import TraceRecorder

#: BENCH_SMOKE=1 shrinks the workload and relaxes the floor so CI can run
#: the benchmark as a fast regression tripwire on noisy shared runners.
SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")

TASK_COUNT = 200
TOKENS = 8
STAGGER = 7
FIRINGS = 1000 if SMOKE else 4000
REPEATS = 1 if SMOKE else 3

#: Acceptance floor: the ready-set engine must deliver at least this factor
#: over the seed-equivalent execution layer on the 200-task program.
REQUIRED_SPEEDUP = 2.0 if SMOKE else 5.0


class SeedReferenceBuffer(CircularBuffer):
    """Seed-faithful window aggregates: recompute the producer/consumer
    released floors and the acquired ceiling on every eligibility check, as
    the pre-engine ``can_produce`` / ``can_consume`` / ``tokens_available``
    did, instead of using the cached values."""

    def _producer_floor(self):
        if not self._producers:
            return self._initial
        return min(w.released for w in self._active_producers())

    def _consumer_floor(self):
        if not self._consumers:
            return None
        return min(w.released for w in self._active_consumers())

    def _producer_ceiling(self):
        return max((w.acquired for w in self._producers.values()), default=self._initial)


def _events_per_second(mode: str, buffer_factory, kernel: str = "off") -> float:
    """Best-of-N completed firings per wall-clock second."""
    best = 0.0
    for _ in range(REPEATS):
        tasks = ring_program(
            TASK_COUNT, tokens=TOKENS, stagger=STAGGER, buffer_factory=buffer_factory
        )
        started = time.perf_counter()
        run = run_tasks(
            tasks,
            mode=mode,
            stop_after_firings=FIRINGS,
            trace=TraceRecorder(level="off"),
            kernel=kernel,
        )
        elapsed = time.perf_counter() - started
        assert run.engine.completed_firings >= FIRINGS
        best = max(best, run.engine.completed_firings / elapsed)
    return best


def test_engine_dispatch_throughput():
    seed_rate = _events_per_second("polling", SeedReferenceBuffer)
    polling_rate = _events_per_second("polling", CircularBuffer)
    ready_rate = _events_per_second("ready-set", CircularBuffer)
    kernel_rate = _events_per_second("ready-set", CircularBuffer, kernel="on")

    rows = [
        ["polling + uncached windows (seed)", f"{seed_rate:,.0f}", "1.0x"],
        ["polling + cached floors", f"{polling_rate:,.0f}", f"{polling_rate / seed_rate:.1f}x"],
        ["ready-set engine (default)", f"{ready_rate:,.0f}", f"{ready_rate / seed_rate:.1f}x"],
        ["ready-set + compiled kernel", f"{kernel_rate:,.0f}", f"{kernel_rate / seed_rate:.1f}x"],
    ]
    print_table(
        f"Engine dispatch throughput ({TASK_COUNT}-task ring, {FIRINGS} firings, tracing off)",
        ["configuration", "events/s", "speedup"],
        rows,
    )

    assert ready_rate >= polling_rate, "indexed dispatch slower than whole-fleet polling"
    # The compiled kernel short-circuits per-event Python overhead; the gain
    # is workload-dependent (~1.1x here, more on fan-out graphs), so the
    # floor only guards against the kernel path regressing below the
    # interpreted dispatcher (with a noise margin for shared runners).
    assert kernel_rate >= 0.9 * ready_rate, (
        f"compiled kernel ({kernel_rate:,.0f} ev/s) slower than interpreted "
        f"ready-set dispatch ({ready_rate:,.0f} ev/s)"
    )
    assert ready_rate / seed_rate >= REQUIRED_SPEEDUP, (
        f"ready-set engine delivered only {ready_rate / seed_rate:.1f}x over the "
        f"seed-equivalent dispatcher (required {REQUIRED_SPEEDUP}x)"
    )
