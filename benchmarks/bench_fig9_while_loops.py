"""E6 / Fig. 9 -- Derivation of the CTA model for a module with two
while-loops sharing a stream.

Derives the Fig. 9b topology (loop components wp0/wp1, stream access
components w0x/w1x, the 1/r forward delays and the -1/r and -2/r periodicity
back edges, the buffer edges with -delta/r), then checks consistency and
computes sufficient buffer capacities.
"""

from fractions import Fraction

from _reporting import print_table

from repro.core import derive_sequential_module
from repro.cta import CTAModel, check_consistency, size_buffers
from repro.graph import extract_task_graph
from repro.lang import parse_module
from repro.util.rational import rational_str

FIG9_SOURCE = """
mod seq A(int x, out int z){
  int y;
  loop{ y = f(x); z = p(y); } while(x > 0);
  loop{ g(x, y, out z); } while(1);
}
"""


def _derive():
    module = parse_module(FIG9_SOURCE)
    graph = extract_task_graph(module)
    graph.set_firing_durations({"f": Fraction(1, 4000), "p": Fraction(1, 4000), "g": Fraction(1, 4000)})
    model = CTAModel("fig9")
    # Pin the stream rate like the enclosing application would (1 kHz source).
    derived = derive_sequential_module(graph, model)
    model.all_ports()[derived.interfaces["x"].entry].fixed_rate = Fraction(1000)
    return model, derived


def test_fig9_derivation_topology(benchmark):
    model, derived = benchmark(_derive)
    component = derived.component
    loop0, loop1 = component.child("loop0"), component.child("loop1")

    def periodicity_phis(owner, stream):
        return sorted(
            rational_str(c.phi)
            for c in owner.connections
            if c.purpose == "periodicity" and c.src.port.startswith(stream)
        )

    rows = [
        ["loop components", sorted(component.children)],
        ["stream access components (loop0)", [n for n, c in loop0.children.items() if c.kind == "stream-access"]],
        ["stream access components (loop1)", [n for n, c in loop1.children.items() if c.kind == "stream-access"]],
        ["module back edge for x (phi)", [rational_str(c.phi) for c in component.connections if c.label == "x:period"]],
        ["loop back edges for x (phi)", [rational_str(c.phi) for l in (loop0, loop1) for c in l.connections if c.label == "x:period"]],
        ["buffer parameters", sorted(derived.buffers)],
    ]
    print_table("Fig. 9: derived CTA model of the two-loop module", ["quantity", "value"], rows)

    assert set(component.children) == {"loop0", "loop1"}
    module_back = [c for c in component.connections if c.label == "x:period"]
    assert module_back[0].phi == -2


def test_fig9_consistency_and_buffer_sizing(benchmark):
    model, derived = _derive()

    def analyse():
        consistency = check_consistency(model, assume_infinite_unsized=True)
        sizing = size_buffers(model)
        return consistency, sizing

    consistency, sizing = benchmark.pedantic(analyse, rounds=1, iterations=1)
    print_table(
        "Fig. 9: analysis results",
        ["quantity", "value"],
        [
            ["consistent (unbounded buffers)", consistency.consistent],
            ["stream rate at the module boundary", f"{float(consistency.port_rates[derived.interfaces['x'].entry]):g} Hz"],
            ["buffer capacities", sizing.capacities],
            ["total capacity", sizing.total_capacity],
        ],
    )
    assert consistency.consistent
    assert sizing.consistency.consistent
