"""E10 -- Conservativeness of the analysis under modal behaviour.

Simulates the modal applications (if/else mute mode; two-while-loop mode
switching) under a range of mode sequences and input signals and verifies the
central guarantee of the approach: with the buffer capacities computed from
the CTA model, the periodic sources and sinks never miss a deadline and the
observed buffer occupancies never exceed the computed capacities -- whatever
the modes do.
"""

from fractions import Fraction

from _reporting import print_table

from repro.apps.modal_audio import (
    compile_mute,
    compile_two_mode,
    simulate_mute,
    simulate_two_mode,
)


def test_mute_modes_never_violate_deadlines(benchmark):
    result = compile_mute()
    sizing = result.size_buffers()

    signals = {
        "always good": [1.0] * 4000,
        "always bad": [-1.0] * 4000,
        "alternating blocks": ([1.0] * 32 + [-1.0] * 32) * 80,
        "random-ish": [((i * 37) % 11) - 5.0 for i in range(4000)],
    }

    def run_all():
        outcomes = []
        for name, signal in signals.items():
            simulation, trace = simulate_mute(Fraction(1, 5), signal, result=result, sizing=sizing)
            muted = sum(1 for v in simulation.sinks["speaker"].consumed if v == 0.0)
            outcomes.append(
                (name, trace.deadline_miss_count(), float(trace.measured_rate("speaker") or 0), muted)
            )
        return outcomes

    outcomes = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "Mute pipeline under different reception patterns",
        ["signal", "deadline misses", "speaker rate [Hz]", "muted samples"],
        [list(o) for o in outcomes],
    )
    assert all(misses == 0 for _, misses, _, _ in outcomes)


def test_two_mode_schedules_never_violate_capacities(benchmark):
    result = compile_two_mode()
    sizing = result.size_buffers()
    schedules = [
        (("loop0", 1), ("loop1", 1)),
        (("loop0", 2), ("loop1", 7)),
        (("loop0", 9), ("loop1", 1)),
        (("loop0", 4), ("loop1", 4)),
    ]

    def run_all():
        outcomes = []
        for schedule in schedules:
            simulation, trace = simulate_two_mode(
                Fraction(1, 20), mode_schedule=schedule, result=result, sizing=sizing
            )
            max_util = max(
                (
                    trace.buffer_high_water.get(name, 0) / buffer.capacity
                    for name, buffer in simulation.buffers.items()
                ),
                default=0.0,
            )
            outcomes.append(
                (str(schedule), trace.deadline_miss_count(), float(trace.measured_rate("dac") or 0), f"{max_util:.2f}")
            )
        return outcomes

    outcomes = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "Two-mode pipeline under adversarial mode schedules",
        ["mode schedule", "deadline misses", "dac rate [Hz]", "max buffer utilisation"],
        [list(o) for o in outcomes],
    )
    assert all(misses == 0 for _, misses, _, _ in outcomes)
    assert all(float(util) <= 1.0 for *_, util in outcomes)
