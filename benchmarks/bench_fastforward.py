"""Steady-state fast-forward on the PAL decoder: 1e6 -> 1e9 event horizons.

The naive engine steps every event; at the PAL decoder's ~48k events per
simulated second that caps any study of long-horizon behaviour (jitter
accumulation, counter wraparound, retention policies) at minutes of wall
clock per simulated minute.  The steady-state detector removes the cap: once
the execution state recurs, the remaining horizon is covered by one O(1)
jump that rigidly shifts the pending events and replays the per-period
counter deltas.  Wall clock becomes a function of the *transient* length,
not the horizon.

This benchmark pins down both halves of that claim on the PAL decoder
application:

1. Exactness -- at a common horizon the fast-forwarded run's aggregate
   metrics equal the naive run's exactly (dict equality, no tolerances),
   per the engine's value-independence contract (guards gate data, never
   timing).
2. Speed -- the ~1e9-event fast-forwarded run must complete within a small
   multiple of the ~1e6-event naive run's wall clock.  The floor is loose
   (the measured gap is orders of magnitude) so noisy CI runners cannot
   trip it spuriously.

3. Value-exactness -- under ``fast_forward="auto"`` (the default) the PAL
   decoder qualifies for value-exact jumps: its RF stimulus is one declared
   period of the composite signal and every filter/mixer/resampler exposes
   ``get_state``.  At a short common horizon the jumped run's *sink sample
   values* are bit-identical to the naive run's (list equality, no
   tolerances), and the auto row covers a >= 1e6-event horizon at
   fast-forward speed.

4. Sampling overhead -- until the first recurrence the value-exact
   detector samples its incrementally maintained state key at every
   anchor completion.  A horizon inside the transient (no jump) measures
   that pure sampling phase; its wall clock must stay within a small
   multiple of naive (the incremental key brought this from ~7x down to
   under 2x -- the floor would catch a regression to from-scratch
   rebuilds).

``BENCH_SMOKE=1`` shrinks the naive reference horizon (the only part whose
cost scales with events) and relaxes the wall-clock floors.
"""

from __future__ import annotations

import os
import time
from fractions import Fraction

from _reporting import print_table

from repro.api import Program

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")

#: Naive reference horizon in simulated seconds (~48k events each).
NAIVE_SECONDS = 2 if SMOKE else 20
#: Fast-forward horizons: the naive reference point plus two long horizons
#: reaching ~1e8 and ~1e9 events (fast-forward cost is horizon-independent,
#: so these do not shrink under BENCH_SMOKE).
FF_SECONDS = (NAIVE_SECONDS, 2000, 20000)
#: The long-horizon fast-forwarded run must finish within this multiple of
#: the naive reference run's wall clock.
MAX_WALL_RATIO = 10.0 if SMOKE else 5.0
#: Streaming-counter retention keeps the trace memory-bounded at any horizon.
RETENTION = 4096
#: Shortest horizon the value-exact detector jumps at (transient plus two
#: value periods of the composite RF stimulus); sink values are compared at
#: this horizon with unbounded retention, so it does not shrink under smoke.
VALUE_SECONDS = 4
#: The auto-mode table row covers at least this many events fast-forwarded.
AUTO_SECONDS = NAIVE_SECONDS if SMOKE else 2000
#: Sampling-overhead horizon: strictly inside the value-exact transient
#: (the PAL decoder first recurs past ~3 simulated seconds), so the auto
#: run pays detection sampling at every anchor completion and never jumps
#: -- a pure measurement of the incremental key's per-sample cost.
SAMPLING_SECONDS = 2
#: The sampling-phase run must stay within this multiple of the naive
#: run's wall clock (the rebuild-from-scratch key sat at ~7x; the
#: incremental key measures ~1.6x).  Relaxed under smoke for noisy
#: runners; the full floor is the ISSUE's acceptance target.
MAX_SAMPLING_RATIO = 3.0 if SMOKE else 2.0


def _run(seconds, fast_forward):
    started = time.perf_counter()
    result = (
        Program.from_app("pal_decoder")
        .analyze()
        .run(
            Fraction(seconds),
            trace="endpoints",
            fast_forward=fast_forward,
            trace_retention=RETENTION,
        )
    )
    return result, time.perf_counter() - started


def _run_for_values(seconds, fast_forward):
    # Unbounded retention: the sinks keep every consumed sample, which is
    # what the bit-identity comparison needs.
    started = time.perf_counter()
    result = (
        Program.from_app("pal_decoder")
        .analyze()
        .run(Fraction(seconds), trace="off", fast_forward=fast_forward)
    )
    return result, time.perf_counter() - started


def test_fastforward_pal_decoder():
    naive, naive_wall = _run(NAIVE_SECONDS, fast_forward=False)
    assert not naive.fast_forwarded

    ff_runs = [_run(seconds, fast_forward=True) for seconds in FF_SECONDS]
    auto_run, auto_wall = _run(AUTO_SECONDS, fast_forward="auto")

    rows = []
    for label, result, wall in (
        [("naive", naive, naive_wall)]
        + [("fast-forward", result, wall) for result, wall in ff_runs]
        + [("auto (value-exact)", auto_run, auto_wall)]
    ):
        queue = result.simulation.queue
        steady = result.simulation.engine.steady_state
        rows.append(
            [
                label,
                f"{float(result.duration):g}",
                f"{queue.processed:,}",
                0 if steady is None else steady.jumps,
                0 if steady is None else f"{steady.skipped_events:,}",
                f"{wall:.2f}",
                f"{queue.processed / wall:,.0f}",
            ]
        )
    print_table(
        "PAL decoder: naive vs steady-state fast-forward",
        ["config", "sim s", "events", "jumps", "skipped", "wall s", "events/s"],
        rows,
    )

    # Exactness at the common horizon: aggregate metrics are *equal*, not
    # approximately equal.  (fast_forwarded is the one metric that is
    # supposed to differ.)
    ff_ref, _ = ff_runs[0]
    assert ff_ref.fast_forwarded, "detector never jumped at the reference horizon"
    metrics_naive = naive.metrics()
    metrics_ff = ff_ref.metrics()
    assert metrics_naive.pop("fast_forwarded") is False
    assert metrics_ff.pop("fast_forwarded") is True
    assert metrics_naive == metrics_ff, "fast-forward changed aggregate metrics"

    # Every long horizon is covered by jumps, and the event count scales
    # with the horizon even though the wall clock does not: the longest run
    # covers on the order of 1e9 events.
    previous_processed = naive.simulation.queue.processed
    for result, _wall in ff_runs[1:]:
        assert result.fast_forwarded
        processed = result.simulation.queue.processed
        assert processed > 5 * previous_processed
        previous_processed = processed
    assert previous_processed >= 5 * 10**8

    # The ~1e9-event run must sit within MAX_WALL_RATIO of the ~1e6-event
    # naive run.
    _, longest_wall = ff_runs[-1]
    assert longest_wall <= MAX_WALL_RATIO * naive_wall, (
        f"fast-forwarded long-horizon run took {longest_wall:.2f}s against a "
        f"{naive_wall:.2f}s naive reference (allowed {MAX_WALL_RATIO}x)"
    )

    # Auto mode (the default) runs the value-exact detector; the table row
    # covers a long horizon at fast-forward speed.
    auto_steady = auto_run.simulation.engine.steady_state
    assert auto_steady is not None and auto_steady.value_exact
    if not SMOKE:
        assert auto_run.fast_forwarded
        assert auto_run.simulation.queue.processed >= 10**6
        assert auto_wall <= MAX_WALL_RATIO * naive_wall

    # Value-exactness: at a short horizon spanning a jump, the sink sample
    # values of the auto run are bit-identical to the naive run's.
    naive_values, _ = _run_for_values(VALUE_SECONDS, fast_forward=False)
    auto_values, _ = _run_for_values(VALUE_SECONDS, fast_forward="auto")
    steady = auto_values.simulation.engine.steady_state
    assert auto_values.fast_forwarded and steady.value_exact and steady.jumps >= 1
    for name in naive_values.simulation.sinks:
        naive_sink = naive_values.simulation.sinks[name].consumed
        auto_sink = auto_values.simulation.sinks[name].consumed
        assert naive_sink == auto_sink, (
            f"sink {name!r}: fast_forward='auto' changed sample values"
        )


def test_sampling_overhead_pal_decoder():
    # Pure sampling phase: a horizon inside the transient, so the auto run
    # samples its state key at every anchor completion and never jumps.
    naive, naive_wall = _run(SAMPLING_SECONDS, fast_forward=False)
    auto, auto_wall = _run(SAMPLING_SECONDS, fast_forward="auto")
    steady = auto.simulation.engine.steady_state
    assert steady is not None and steady.value_exact
    assert steady.jumps == 0, "horizon not inside the transient"
    sampled = len(steady._seen)
    assert sampled > 0, "detector never sampled"

    ratio = auto_wall / naive_wall
    print_table(
        "PAL decoder: value-exact sampling overhead (no jump)",
        ["config", "sim s", "states sampled", "wall s", "ratio vs naive"],
        [
            ["naive", f"{SAMPLING_SECONDS:g}", 0, f"{naive_wall:.2f}", "1.00"],
            [
                "auto (sampling)",
                f"{SAMPLING_SECONDS:g}",
                f"{sampled:,}",
                f"{auto_wall:.2f}",
                f"{ratio:.2f}",
            ],
        ],
    )
    assert ratio <= MAX_SAMPLING_RATIO, (
        f"sampling phase cost {ratio:.2f}x naive "
        f"(allowed {MAX_SAMPLING_RATIO}x): the incremental state key has "
        f"regressed towards rebuild-from-scratch cost"
    )
