"""Platform-layer throughput and the heterogeneous PAL speedup curve.

Two questions the platform subsystem must keep answering cheaply:

1. **What does platform mode cost?**  On the 200-task synthetic ring
   (the dispatch-bound regime of ``bench_engine_dispatch``) we record
   events/s for the legacy boolean ``BoundedProcessors`` policy, its
   platform re-expression ``ListScheduledPlatform`` (same schedule,
   processor objects + per-processor accounting on top) and the fully
   preemptive ``FixedPriorityPreemptive`` (suspend/resume with completion
   events cancelled and re-posted).  The floors are deliberately relaxed --
   they only trip when platform mode degenerates pathologically, not on
   shared-runner jitter.

2. **Does the heterogeneous axis reproduce a sane speedup curve?**  The PAL
   decoder is swept over ``1 fast + N slow`` platforms (the asymmetric
   MPSoC shape); per-processor utilisation and firing throughput are
   reported as the speedup table.  Sweeping platforms exercises the same
   facade path users take (``Sweep`` run axis -> ``Analysis.run(platform=)``).

BENCH_SMOKE=1 (the gating CI job) shrinks both workloads; the JSONL tables
land in ``$BENCH_REPORT_JSON`` via ``_reporting.print_table`` like every
other benchmark.
"""

from __future__ import annotations

import os
import time
from fractions import Fraction

from _reporting import print_table

from repro.api import Sweep
from repro.engine import BoundedProcessors, ring_program, run_tasks
from repro.platform import (
    FixedPriorityPreemptive,
    ListScheduledPlatform,
    Platform,
)
from repro.runtime.trace import TraceRecorder

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")

TASK_COUNT = 200
TOKENS = 8
STAGGER = 7
PROCESSORS = 4  # fewer processors than tokens: contention, hence preemption
FIRINGS = 1000 if SMOKE else 4000
REPEATS = 1 if SMOKE else 3

#: Relaxed floors: platform mode must stay within these factors of the
#: legacy boolean policy on the identical schedule.  Locally measured ratios
#: sit far above both; the floors only catch a pathological regression
#: (e.g. per-event rebinding or accidental O(tasks) resume scans).
REQUIRED_PLATFORM_FACTOR = 0.4 if SMOKE else 0.5
REQUIRED_PREEMPTIVE_FACTOR = 0.25 if SMOKE else 0.35

#: Heterogeneous PAL curve: 1 fast processor + N slow ones.
SLOW_COUNTS = (1, 2, 4) if SMOKE else (1, 2, 4, 8)
PAL_DURATION = Fraction(1, 10) if SMOKE else Fraction(1, 4)


def _events_per_second(policy_factory) -> float:
    """Best-of-N completed firings per wall-clock second on the ring."""
    best = 0.0
    for _ in range(REPEATS):
        tasks = ring_program(TASK_COUNT, tokens=TOKENS, stagger=STAGGER)
        policy = policy_factory()
        started = time.perf_counter()
        run = run_tasks(
            tasks,
            policy=policy,
            stop_after_firings=FIRINGS,
            trace=TraceRecorder(level="off"),
        )
        elapsed = time.perf_counter() - started
        assert run.engine.completed_firings >= FIRINGS
        best = max(best, run.engine.completed_firings / elapsed)
    return best


def test_platform_dispatch_throughput():
    legacy_rate = _events_per_second(lambda: BoundedProcessors(PROCESSORS))
    platform_rate = _events_per_second(
        lambda: ListScheduledPlatform(Platform.homogeneous(PROCESSORS))
    )
    preemptive_rate = _events_per_second(
        lambda: FixedPriorityPreemptive(Platform.homogeneous(PROCESSORS))
    )
    # sanity: the preemptive run must actually preempt on this workload
    probe = run_tasks(
        ring_program(TASK_COUNT, tokens=TOKENS, stagger=STAGGER),
        policy=FixedPriorityPreemptive(Platform.homogeneous(PROCESSORS)),
        stop_after_firings=FIRINGS // 2,
        trace=TraceRecorder(level="off"),
    )
    assert probe.engine.preemptions > 0

    rows = [
        ["BoundedProcessors (legacy boolean)", f"{legacy_rate:,.0f}", "1.00x"],
        [
            "ListScheduledPlatform (platform mode)",
            f"{platform_rate:,.0f}",
            f"{platform_rate / legacy_rate:.2f}x",
        ],
        [
            "FixedPriorityPreemptive (suspend/resume)",
            f"{preemptive_rate:,.0f}",
            f"{preemptive_rate / legacy_rate:.2f}x",
        ],
    ]
    print_table(
        f"platform dispatch, {TASK_COUNT}-task ring on {PROCESSORS} processors "
        f"({FIRINGS} firings, preemptions={probe.engine.preemptions})",
        ("configuration", "events/sec", "vs legacy"),
        rows,
    )

    assert platform_rate >= REQUIRED_PLATFORM_FACTOR * legacy_rate, (
        f"platform-mode list scheduling reached only "
        f"{platform_rate / legacy_rate:.2f}x of the legacy policy "
        f"(floor {REQUIRED_PLATFORM_FACTOR}x)"
    )
    assert preemptive_rate >= REQUIRED_PREEMPTIVE_FACTOR * legacy_rate, (
        f"preemptive scheduling reached only "
        f"{preemptive_rate / legacy_rate:.2f}x of the legacy policy "
        f"(floor {REQUIRED_PREEMPTIVE_FACTOR}x)"
    )


def test_pal_heterogeneous_speedup_curve():
    """1 fast (2x) + N slow (1x) processors on the PAL decoder grid."""
    platforms = [
        Platform.heterogeneous([2] + [1] * slow, name=f"1fast+{slow}slow")
        for slow in SLOW_COUNTS
    ]
    report = (
        Sweep("pal_decoder", duration=PAL_DURATION, name="pal-heterogeneous")
        .add_axis("platform", platforms)
        .run()
    )
    assert report.ok, [failure.error for failure in report.failures]

    rows = []
    for result in report:
        platform = result.params["platform"]
        utilisation = {
            key[len("util["):-1]: value
            for key, value in result.metrics.items()
            if key.startswith("util[")
        }
        rows.append(
            (
                platform.name,
                len(platform),
                result.metrics["completed_firings"],
                result.metrics["deadline_misses"],
                f"{result.metrics['makespan']:.4f}",
                f"{max(utilisation.values()):.2f}" if utilisation else "-",
            )
        )
    print_table(
        f"PAL decoder on 1 fast + N slow processors (duration {PAL_DURATION})",
        ("platform", "processors", "firings", "misses", "makespan", "max util"),
        rows,
    )
    # The speedup shape the axis exists for: adding slow processors must
    # never lose firings and must never *add* deadline misses (the buffer
    # sizing assumes unbounded hardware, so narrow platforms legitimately
    # miss; the curve has to decay towards the self-timed behaviour).
    firings = [result.metrics["completed_firings"] for result in report]
    assert firings == sorted(firings), "firings decreased while adding processors"
    misses = [result.metrics["deadline_misses"] for result in report]
    assert misses == sorted(misses, reverse=True), (
        f"deadline misses increased while adding processors: {misses}"
    )
    assert misses[-1] < misses[0], "the platform axis had no effect on misses"


if __name__ == "__main__":
    test_platform_dispatch_throughput()
    test_pal_heterogeneous_speedup_curve()
