"""E9 -- Scaling of the polynomial CTA analysis vs the exact SDF baseline.

The paper's complexity claim: consistency checking and buffer sizing on the
CTA model are polynomial in the size of the program, whereas exact SDF
analysis (HSDF expansion / state-space exploration) is exponential in the
description because the repetition vector enters the problem size.

Workload: matched decimation cascades of growing depth (each stage halves the
rate).  The CTA model grows linearly with the depth while the repetition-
vector sum doubles per stage.  The benchmark reports model sizes, analysis
times and where the crossover falls.
"""

import pytest

from _reporting import print_table

from repro.baselines import compare_scaling, exact_analysis, format_comparison, multirate_chain


def test_scaling_comparison_table(benchmark):
    rows = benchmark.pedantic(
        lambda: compare_scaling([1, 2, 3, 4, 5, 6, 7], rate=2, base_hz=1 << 14, size_buffers=False),
        rounds=1,
        iterations=1,
    )
    print_table(
        "Analysis scaling: CTA (polynomial) vs exact SDF (exponential)",
        ["stages", "CTA ports", "CTA conn", "CTA time [s]", "q-sum", "HSDF actors", "SDF time [s]", "SDF/CTA time"],
        [
            [
                r.stages,
                r.cta_ports,
                r.cta_connections,
                f"{r.cta_wall_seconds:.4f}",
                r.sdf_repetition_sum,
                r.sdf_hsdf_actors,
                f"{r.sdf_wall_seconds:.4f}",
                f"{r.wall_ratio:.2f}",
            ]
            for r in rows
        ],
    )
    # Shape: CTA model sizes grow linearly, the repetition vector exponentially.
    cta_growth = [b.cta_ports - a.cta_ports for a, b in zip(rows, rows[1:])]
    assert max(cta_growth) == min(cta_growth)
    assert rows[-1].sdf_repetition_sum > 2 ** (rows[-1].stages - 1)
    # The exact route's cost explodes towards the deep end; the last step of
    # the exact analysis must be growing faster than the CTA analysis.
    assert rows[-1].sdf_wall_seconds / max(rows[-2].sdf_wall_seconds, 1e-9) > (
        rows[-1].cta_wall_seconds / max(rows[-2].cta_wall_seconds, 1e-9)
    )


@pytest.mark.parametrize("stages", [3, 6, 9])
def test_exact_sdf_cost_growth(benchmark, stages):
    report = benchmark.pedantic(
        lambda: exact_analysis(multirate_chain(stages), run_statespace=False), rounds=1, iterations=1
    )
    print_table(
        f"Exact SDF analysis cost (chain of {stages} decimators)",
        ["quantity", "value"],
        [
            ["repetition vector sum", report.repetition_sum],
            ["HSDF actors", report.hsdf_actors],
            ["HSDF edges", report.hsdf_edges],
            ["wall time [s]", f"{report.wall_seconds:.4f}"],
        ],
    )
    assert report.repetition_sum == 2 ** (stages + 1) - 1
