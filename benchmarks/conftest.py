"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark module reproduces one figure / experiment of the paper (see
DESIGN.md's experiment index and EXPERIMENTS.md for the recorded outcomes).
Each benchmark both *measures* the analysis step with pytest-benchmark and
*prints* the rows/series the corresponding figure reports, so running

    pytest benchmarks/ --benchmark-only -s

regenerates the full set of reproduced results.
"""

from __future__ import annotations

import pytest

from repro.apps.pal_decoder import PalDecoderApp



@pytest.fixture(scope="session")
def pal_app() -> PalDecoderApp:
    return PalDecoderApp(scale=1000)


@pytest.fixture(scope="session")
def pal_compiled(pal_app):
    return pal_app.compile()


@pytest.fixture(scope="session")
def pal_sized(pal_app):
    result = pal_app.compile()
    sizing = result.size_buffers()
    return result, sizing
