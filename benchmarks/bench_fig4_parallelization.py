"""E3 / Fig. 4 -- Parallelization of a sequential modal module.

The module of Fig. 4a assigns ``y`` in either branch of an ``if`` and then
calls ``k(y, out x:2)``.  The extraction creates one task per statement; the
guarded statements become unconditionally executing tasks whose bodies stay
guarded, and the variable ``y`` becomes a circular buffer with two producers
and one consumer (Fig. 4b).

The second experiment quantifies what the parallelization is *for*: the
extracted parallelism executed on a bounded number of processors.  The
scheduler engine's ``BoundedProcessors(n)`` policy list-schedules a wide
fork/join workload on n processors and the measured makespans yield the
speedup-vs-cores curve of the Fig. 4 scenario axis.
"""

from _reporting import print_table

from repro.engine import BoundedProcessors, fork_join_program, run_tasks
from repro.graph import extract_task_graph, task_graph_to_sdf, static_order_schedule
from repro.lang import parse_module

FIG4_SOURCE = """
mod seq M(out int x, int s){
  int y;
  loop{
    if (s > 0) { y = g(); } else { y = h(); }
    k(y, out x:2);
  } while(1);
}
"""


def test_fig4_task_graph_extraction(benchmark):
    module = parse_module(FIG4_SOURCE)
    graph = benchmark(extract_task_graph, module)

    rows = []
    for task in sorted(graph.tasks.values(), key=lambda t: t.order):
        rows.append(
            [
                task.name,
                "guarded" if task.guard is not None else "unconditional",
                ", ".join(f"{a.buffer}:{a.count}" for a in task.reads),
                ", ".join(f"{a.buffer}:{a.count}" for a in task.writes),
            ]
        )
    print_table("Fig. 4: tasks extracted from the modal module", ["task", "execution", "reads", "writes"], rows)

    buffer_rows = [
        [b.name, b.kind, len(b.producers), len(b.consumers)] for b in graph.buffers.values()
    ]
    print_table("Fig. 4: circular buffers", ["buffer", "kind", "producers", "consumers"], buffer_rows)

    assert len(graph.tasks) == 3
    assert sum(1 for t in graph.tasks.values() if t.guard is not None) == 2
    assert len(graph.buffers["y"].producers) == 2
    assert graph.streams["x"].per_loop_counts == {"loop0": 2}

    sdf = task_graph_to_sdf(graph)
    schedule = static_order_schedule(sdf)
    print(f"\nvalid static-order schedule of the extracted task graph: {schedule}")


def test_fig4_bounded_processor_speedup(benchmark):
    """Speedup of the extracted parallelism on n processors (n = 1, 2, 4, 8)."""
    width = 8
    rounds = 25
    firings = rounds * (width + 2)  # split + workers + join per round

    def makespan(processors: int):
        run = run_tasks(
            fork_join_program(width),
            policy=BoundedProcessors(processors),
            stop_after_firings=firings,
        )
        assert run.engine.completed_firings == firings
        return run.makespan

    makespans = {n: makespan(n) for n in (1, 2, 4)}
    makespans[8] = benchmark(makespan, 8)

    base = makespans[1]
    rows = [
        [n, f"{float(m):.3f} s", f"{float(base / m):.2f}x"]
        for n, m in sorted(makespans.items())
    ]
    print_table(
        f"Fig. 4 scenario axis: {width}-wide fork/join, {rounds} rounds, list scheduling",
        ["processors", "makespan", "speedup"],
        rows,
    )

    # The speedup curve must be monotone and approach the width.
    assert makespans[1] >= makespans[2] >= makespans[4] >= makespans[8]
    assert base / makespans[8] > 4
