"""E3 / Fig. 4 -- Parallelization of a sequential modal module.

The module of Fig. 4a assigns ``y`` in either branch of an ``if`` and then
calls ``k(y, out x:2)``.  The extraction creates one task per statement; the
guarded statements become unconditionally executing tasks whose bodies stay
guarded, and the variable ``y`` becomes a circular buffer with two producers
and one consumer (Fig. 4b).

The second experiment quantifies what the parallelization is *for*: the
extracted parallelism executed on a bounded number of processors.  The
scheduler engine's ``BoundedProcessors(n)`` policy list-schedules a wide
fork/join workload on n processors; the processor-count grid runs through
the facade's sweep machinery (``repro.api.Sweep.from_callable``) and the
aggregated makespans yield the speedup-vs-cores curve of the Fig. 4
scenario axis.
"""

from _reporting import print_table

from repro.api import Sweep
from repro.engine import BoundedProcessors, fork_join_program, run_tasks
from repro.graph import extract_task_graph, task_graph_to_sdf, static_order_schedule
from repro.lang import parse_module

FIG4_SOURCE = """
mod seq M(out int x, int s){
  int y;
  loop{
    if (s > 0) { y = g(); } else { y = h(); }
    k(y, out x:2);
  } while(1);
}
"""


def test_fig4_task_graph_extraction(benchmark):
    module = parse_module(FIG4_SOURCE)
    graph = benchmark(extract_task_graph, module)

    rows = []
    for task in sorted(graph.tasks.values(), key=lambda t: t.order):
        rows.append(
            [
                task.name,
                "guarded" if task.guard is not None else "unconditional",
                ", ".join(f"{a.buffer}:{a.count}" for a in task.reads),
                ", ".join(f"{a.buffer}:{a.count}" for a in task.writes),
            ]
        )
    print_table("Fig. 4: tasks extracted from the modal module", ["task", "execution", "reads", "writes"], rows)

    buffer_rows = [
        [b.name, b.kind, len(b.producers), len(b.consumers)] for b in graph.buffers.values()
    ]
    print_table("Fig. 4: circular buffers", ["buffer", "kind", "producers", "consumers"], buffer_rows)

    assert len(graph.tasks) == 3
    assert sum(1 for t in graph.tasks.values() if t.guard is not None) == 2
    assert len(graph.buffers["y"].producers) == 2
    assert graph.streams["x"].per_loop_counts == {"loop0": 2}

    sdf = task_graph_to_sdf(graph)
    schedule = static_order_schedule(sdf)
    print(f"\nvalid static-order schedule of the extracted task graph: {schedule}")


def test_fig4_bounded_processor_speedup(benchmark):
    """Speedup of the extracted parallelism on n processors (n = 1, 2, 4, 8),
    swept over the processor grid through the facade's sweep machinery."""
    width = 8
    rounds = 25
    firings = rounds * (width + 2)  # split + workers + join per round

    def makespan(processors: int):
        run = run_tasks(
            fork_join_program(width),
            policy=BoundedProcessors(processors),
            stop_after_firings=firings,
        )
        assert run.engine.completed_firings == firings
        return run.makespan

    def point(processors: int):
        return {"makespan": float(makespan(processors))}

    report = (
        Sweep.from_callable(point, name="fig4 fork/join speedup")
        .add_axis("processors", [1, 2, 4, 8])
        .run(workers=2)
    )
    benchmark(makespan, 8)

    speedup = {
        row["processors"]: row["speedup"] for row in report.speedup_table("makespan")
    }
    makespans = dict(zip(report.column("processors"), report.column("makespan")))
    rows = [
        [n, f"{makespans[n]:.3f} s", f"{speedup[n]:.2f}x"]
        for n in sorted(makespans)
    ]
    print_table(
        f"Fig. 4 scenario axis: {width}-wide fork/join, {rounds} rounds, list scheduling",
        ["processors", "makespan", "speedup"],
        rows,
    )

    # The speedup curve must be monotone and approach the width.
    assert report.ok
    assert makespans[1] >= makespans[2] >= makespans[4] >= makespans[8]
    assert speedup[8] > 4
