"""Sweep-service cache economics: cold vs warm vs overlapping grids.

The service's whole value proposition is that a point is paid for once:
the first (cold) run of a grid compiles and executes everything and fills
the content-addressed store; a repeated (warm) run must answer every
point from the store without compiling or executing anything; a widened
(overlapping) grid must pay only for its genuinely new points.  This
benchmark measures all three wall clocks on the PAL-decoder grid -- the
Fig. 4 scenario, the sweep this repo re-runs most -- and asserts the
correctness half outright: the warm report is bit-identical to the cold
one and executed exactly zero points.

BENCH_SMOKE=1 (the gating CI job) shrinks the grid and enforces a
relaxed warm-vs-cold floor: answering a PAL grid from the store must be
at least 3x faster than computing it.  Locally the ratio is orders of
magnitude higher (a warm hit is a JSONL seek+read; a cold point is a
full compile + simulation), so only a genuine regression -- e.g. cache
hits accidentally re-entering the compiler -- can trip the floor.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from fractions import Fraction

from _reporting import print_table

from repro.api import Sweep
from repro.engine import BoundedProcessors

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")

#: simulated seconds per grid point; BENCH_SMOKE halves the per-point work
DURATION = Fraction(1, 4) if SMOKE else Fraction(1, 2)
#: processor-count axis of the base grid
PROCESSOR_COUNTS = tuple(range(1, 5)) if SMOKE else tuple(range(1, 9))
#: extra processor counts the overlapping grid adds (its only new points)
WIDENED_EXTRA = (12, 16)

#: Acceptance floor: a fully cached PAL grid must be served at least this
#: many times faster than it was computed.  Real ratios are far higher --
#: the floor only guards against hits silently re-entering the
#: compile/execute path.
REQUIRED_WARM_SPEEDUP = 3.0


def _grid(counts) -> Sweep:
    return Sweep("pal_decoder", duration=DURATION).add_axis(
        "scheduler", [BoundedProcessors(n) for n in counts]
    )


def _timed_run(counts, store):
    sweep = _grid(counts)
    started = time.perf_counter()
    report = sweep.run(store=store, keep_runs=False)
    elapsed = time.perf_counter() - started
    assert report.ok, [failure.error for failure in report.failures]
    return elapsed, report


def test_sweep_cache_economics():
    root = tempfile.mkdtemp(prefix="repro-bench-store-")
    try:
        store = os.path.join(root, "store")
        cold_time, cold = _timed_run(PROCESSOR_COUNTS, store)
        warm_time, warm = _timed_run(PROCESSOR_COUNTS, store)
        widened_counts = PROCESSOR_COUNTS + WIDENED_EXTRA
        widened_time, widened = _timed_run(widened_counts, store)

        # correctness half of the economics: the cache serves, never skews
        assert warm.to_json() == cold.to_json(), "warm report diverged"
        assert warm.service_stats["executed"] == 0, warm.service_stats
        assert widened.service_stats["executed"] == len(WIDENED_EXTRA), (
            widened.service_stats
        )
        assert widened.service_stats["store_hits"] == len(PROCESSOR_COUNTS)

        per_new_point = cold_time / len(PROCESSOR_COUNTS)
        rows = [
            ("cold", len(cold), cold.service_stats["executed"],
             f"{cold_time:.3f}", "1.00x"),
            ("warm", len(warm), warm.service_stats["executed"],
             f"{warm_time:.3f}", f"{cold_time / warm_time:.2f}x"),
            ("overlapping", len(widened), widened.service_stats["executed"],
             f"{widened_time:.3f}",
             f"{cold_time / widened_time:.2f}x"),
        ]
        print_table(
            f"sweep cache, PAL-decoder grid ({len(PROCESSOR_COUNTS)} points, "
            f"duration {DURATION}, ~{per_new_point:.2f}s/new point)",
            ("run", "points", "executed", "seconds", "vs cold"),
            rows,
        )

        warm_speedup = cold_time / warm_time
        assert warm_speedup >= REQUIRED_WARM_SPEEDUP, (
            f"fully cached PAL grid served only {warm_speedup:.2f}x faster "
            f"than the cold run (floor {REQUIRED_WARM_SPEEDUP}x) -- are "
            f"cache hits re-entering the compiler?"
        )
    finally:
        shutil.rmtree(root, ignore_errors=True)


if __name__ == "__main__":
    test_sweep_cache_economics()
