"""E4+E5 / Figs. 7 and 8 -- Construction of single-rate and multi-rate CTA
components from tasks.

Regenerates the construction of Fig. 7 (a task reading two buffers and
writing one becomes a component with six ports, zero-delay input coupling and
firing-duration connections) and reproduces the complete (epsilon, phi, gamma)
table of Fig. 8c for the actor that consumes 4 tokens and produces 2.
"""

from fractions import Fraction

from _reporting import print_table

from repro.core import build_task_component, multi_rate_table
from repro.cta import CTAModel
from repro.graph.taskgraph import Access, Task
from repro.util.rational import rational_str


def _fig7_task():
    task = Task(name="tf", kind="call", function="f", firing_duration=Fraction(1, 1000))
    task.reads = [Access("bx", 1), Access("by", 1)]
    task.writes = [Access("bz", 1)]
    return task


def test_fig7_single_rate_component(benchmark):
    def build():
        model = CTAModel("fig7")
        return build_task_component(_fig7_task(), model)

    component = benchmark(build)
    firing = [c for c in component.connections if c.purpose == "firing"]
    atomic = [c for c in component.connections if c.purpose == "atomic-start"]
    print_table(
        "Fig. 7: single-rate CTA component of task tf",
        ["quantity", "value"],
        [
            ["ports", sorted(component.ports)],
            ["zero-delay input couplings", len(atomic)],
            ["firing connections (rho delay)", len(firing)],
            ["maximum port rate", f"{rational_str(component.ports['bx.take'].max_rate)} = 1/rho"],
        ],
    )
    assert len(component.ports) == 6
    assert all(c.epsilon == Fraction(1, 1000) for c in firing)


def test_fig8_multi_rate_table(benchmark):
    rho = Fraction(1, 500)
    table = benchmark(multi_rate_table, 4, 2, rho)
    rows = []
    for (src, dst), (eps, phi, gamma) in sorted(table.items()):
        rows.append(
            [f"({src}, {dst})", "rho" if eps == rho else rational_str(eps), rational_str(phi), rational_str(gamma)]
        )
    print_table("Fig. 8c: delays and transfer rate ratios", ["connection", "epsilon", "phi", "gamma"], rows)

    # The exact values of the paper's table.
    assert table[("p0", "p1")][1:] == (Fraction(3), Fraction(1))
    assert table[("p0", "p2")][1:] == (Fraction(2), Fraction(1, 2))
    assert table[("p0", "p3")][1:] == (Fraction(0), Fraction(1, 2))
    assert table[("p3", "p0")][1:] == (Fraction(0), Fraction(2))
    assert table[("p3", "p1")][1:] == (Fraction(3, 2), Fraction(2))
    assert table[("p3", "p2")][1:] == (Fraction(1), Fraction(1))
