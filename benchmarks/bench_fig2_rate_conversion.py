"""E1 / Fig. 2 -- Rate conversion in a cyclic task graph.

Reproduces the Sec. III comparison: the sequential specification must encode
the complete static-order schedule (5 firings for the 3:2 example, growing
with the rates), whereas the OIL specification needs exactly one call per
function.  Also reports the repetition vector (tg executes 3/2x as often as
tf), deadlock-freedom with the paper's 4 initial values under self-timed
execution, and the conservativeness of the strictly periodic CTA abstraction
(which needs 6 initial values).
"""

from _reporting import print_table

from repro.apps.rate_converter import (
    compare_specifications,
    compile_fig2,
    fig2_task_graph,
    minimal_initial_tokens_for_cta,
    sequential_program_text,
)
from repro.baselines import schedule_growth
from repro.dataflow import check_deadlock, sdf_throughput


def test_fig2_specification_comparison(benchmark):
    comparison = benchmark(compare_specifications)
    print_table(
        "Fig. 2: sequential schedule vs OIL specification",
        ["quantity", "value"],
        [
            ["repetition vector", comparison.repetition_vector],
            ["static-order schedule length (firings)", comparison.schedule_length],
            ["sequential statements (Fig. 2b)", comparison.sequential_statement_count],
            ["OIL function calls (Fig. 2c)", comparison.oil_function_calls],
            ["specification size reduction", f"x{comparison.reduction_factor:.1f}"],
        ],
    )
    assert comparison.repetition_vector == {"tf": 2, "tg": 3}
    assert comparison.oil_function_calls == 2


def test_fig2_self_timed_vs_periodic_abstraction(benchmark):
    def analyse():
        graph = fig2_task_graph()
        deadlock = check_deadlock(graph)
        throughput = sdf_throughput(graph)
        minimal = minimal_initial_tokens_for_cta()
        return deadlock, throughput, minimal

    deadlock, throughput, minimal = benchmark(analyse)
    print_table(
        "Fig. 2: exact self-timed analysis vs periodic CTA abstraction",
        ["quantity", "value"],
        [
            ["deadlock-free with 4 initial values (self-timed)", deadlock.deadlock_free],
            ["exact iteration period (f,g take 1 ms)", f"{float(throughput.iteration_period) * 1000:.1f} ms"],
            ["initial values needed by the CTA abstraction", minimal],
            ["CTA consistent with 4 initial values", compile_fig2().check_consistency(assume_infinite_unsized=True).consistent],
        ],
    )
    assert deadlock.deadlock_free
    assert minimal > 4


def test_fig2_schedule_growth(benchmark):
    rows = benchmark(schedule_growth, [(3, 2), (5, 4), (7, 5), (16, 10), (25, 16), (25, 8)])
    print_table(
        "Fig. 2 (extended): schedule length for other rate pairs",
        ["produce", "consume", "schedule firings", "sequential stmts", "OIL stmts"],
        [
            [r.produce, r.consume, r.schedule_length, r.sequential_statements, r.oil_statements]
            for r in rows
        ],
    )
    print("\nFig. 2b-style sequential program for the paper's 3:2 example:\n")
    print(sequential_program_text())
    assert all(r.oil_statements == 3 for r in rows)
