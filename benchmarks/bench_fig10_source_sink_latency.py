"""E7 / Figs. 6 and 10 -- Program with a periodic source, a periodic sink and
a 5 ms latency constraint.

Reproduces the Fig. 6 program (nested parallel modules A{B,C} between a 1 kHz
source and sink, ``start x 5 ms before y``) and its Fig. 10 CTA model:
consistency, buffer capacities and verification of the latency constraint.
"""

from fractions import Fraction

from _reporting import print_table

from repro.core import compile_program

FIG6_SOURCE = """
mod seq B(int a, out int z){ loop{ fb(a, out z); } while(1); }
mod seq C(int a, int z, out int b){ loop{ fc(a, z, out b); } while(1); }

mod par A(int a, out int b){
  fifo int z;
  B(a, out z) || C(a, z, out b)
}

mod par D(){
  source int x = src() @ 1 kHz;
  sink int y = snk() @ 1 kHz;
  start x 5 ms before y;
  A(x, out y)
}
"""

WCETS = {"fb": Fraction(1, 5000), "fc": Fraction(1, 5000)}


def test_fig10_derivation_and_analysis(benchmark):
    def pipeline():
        result = compile_program(FIG6_SOURCE, function_wcets=WCETS)
        consistency = result.check_consistency(assume_infinite_unsized=True)
        sizing = result.size_buffers()
        checks = result.verify_latency(sizing.consistency)
        return result, consistency, sizing, checks

    result, consistency, sizing, checks = benchmark(pipeline)

    rows = [
        ["CTA ports / connections", f"{len(result.model.all_ports())} / {len(result.model.all_connections())}"],
        ["consistent", consistency.consistent],
        ["source rate", f"{float(consistency.port_rates[result.source_ports['x']]):g} Hz"],
        ["sink rate", f"{float(consistency.port_rates[result.sink_ports['y']]):g} Hz"],
        ["buffer capacities", sizing.capacities],
        ["latency constraint", checks[0].message],
        ["latency satisfied", checks[0].satisfied],
    ]
    print_table("Fig. 10: source/sink/latency analysis", ["quantity", "value"], rows)

    assert consistency.consistent
    assert sizing.consistency.consistent
    assert all(check.satisfied for check in checks)


def test_fig10_infeasible_when_bound_too_tight(benchmark):
    tight = FIG6_SOURCE.replace("5 ms", "0 ms")

    def analyse():
        result = compile_program(tight, function_wcets=WCETS)
        try:
            sizing = result.size_buffers()
            checks = result.verify_latency(sizing.consistency)
            return sizing.consistency.consistent and all(c.satisfied for c in checks)
        except Exception:
            return False

    feasible = benchmark(analyse)
    print_table(
        "Fig. 10 (variant): 0 ms bound through a two-stage pipeline",
        ["quantity", "value"],
        [["feasible", feasible]],
    )
    assert not feasible
