"""E8 / Figs. 11 and 12 -- The PAL video decoder case study.

Compiles the Fig. 11 OIL program, derives the Fig. 12 CTA model, verifies the
rate-conversion factors (1/25, 10/16, 1/8), the absolute source/sink rates
(6.4 MS/s, 4 MS/s, 32 kHz -- scaled), the audio/video synchronisation
constraint and the buffer capacities; then executes the decoder on a synthetic
RF signal and checks that the measured behaviour respects the analysis.
"""

from fractions import Fraction

from _reporting import print_table

from repro.api import Analysis
from repro.apps.pal_decoder import (
    AUDIO_DECIMATION,
    AUDIO_FINAL_DECIMATION,
    VIDEO_DOWN,
    VIDEO_UP,
)
from repro.cta import compute_rate_structure
from repro.dsp import dominant_frequency


def test_fig12_model_derivation(benchmark, pal_app):
    result = benchmark(pal_app.compile)
    structure = compute_rate_structure(result.model)
    rf = structure.relative_rate(result.source_ports["rf"])
    screen = structure.relative_rate(result.sink_ports["screen"])
    speakers = structure.relative_rate(result.sink_ports["speakers"])

    rows = [
        ["CTA ports", len(result.model.all_ports())],
        ["CTA connections", len(result.model.all_connections())],
        ["buffer parameters", len(result.buffers)],
        ["gamma video path (screen/rf)", f"{screen / rf} (paper: {VIDEO_UP}/{VIDEO_DOWN})"],
        ["gamma audio path (speakers/rf)", f"{speakers / rf} (paper: 1/{AUDIO_DECIMATION * AUDIO_FINAL_DECIMATION})"],
    ]
    print_table("Fig. 12: derived CTA model of the PAL decoder", ["quantity", "value"], rows)
    assert screen / rf == Fraction(VIDEO_UP, VIDEO_DOWN)
    assert speakers / rf == Fraction(1, AUDIO_DECIMATION * AUDIO_FINAL_DECIMATION)


def test_fig12_analysis(benchmark, pal_app, pal_compiled):
    def analyse():
        consistency = pal_compiled.check_consistency(assume_infinite_unsized=True)
        sizing = pal_compiled.size_buffers()
        checks = pal_compiled.verify_latency(sizing.consistency)
        return consistency, sizing, checks

    consistency, sizing, checks = benchmark.pedantic(analyse, rounds=1, iterations=1)
    rows = [
        ["consistent", consistency.consistent],
        ["rf rate", f"{float(consistency.port_rates[pal_compiled.source_ports['rf']]):g} Hz (declared {float(pal_app.rf_rate):g})"],
        ["screen rate", f"{float(consistency.port_rates[pal_compiled.sink_ports['screen']]):g} Hz"],
        ["speakers rate", f"{float(consistency.port_rates[pal_compiled.sink_ports['speakers']]):g} Hz"],
        ["A/V sync satisfied", all(c.satisfied for c in checks)],
        ["total buffer capacity", sizing.total_capacity],
    ]
    rows.extend([f"  buffer {name}", value] for name, value in sorted(sizing.capacities.items()))
    print_table("Figs. 11/12: PAL decoder analysis", ["quantity", "value"], rows)
    assert consistency.consistent
    assert all(c.satisfied for c in checks)


def test_fig11_pal_execution(benchmark, pal_app, pal_sized):
    result, sizing = pal_sized
    analysis = Analysis(pal_app.program(), result, sizing=sizing)

    def run():
        return analysis.run(Fraction(1))

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    simulation, trace = outcome.simulation, outcome.trace
    audio = outcome.sink("speakers")
    video = outcome.sink("screen")
    expected_audio = pal_app.signal.audio_tone * AUDIO_DECIMATION * AUDIO_FINAL_DECIMATION
    rows = [
        ["deadline violations", trace.deadline_miss_count()],
        ["measured screen rate", f"{float(trace.measured_rate('screen') or 0):g} Hz"],
        ["measured speakers rate", f"{float(trace.measured_rate('speakers') or 0):g} Hz"],
        ["decoded audio samples", len(audio)],
        ["decoded video samples", len(video)],
        ["recovered audio tone", f"{dominant_frequency(audio[8:]):.4f} (expected {expected_audio:.4f})"],
        ["rf->screen fill latency", f"{float(trace.end_to_end_latency('rf', 'screen') or 0) * 1000:.3f} ms"],
        ["rf->speakers fill latency", f"{float(trace.end_to_end_latency('rf', 'speakers') or 0) * 1000:.3f} ms"],
    ]
    for name, mark in sorted(trace.buffer_high_water.items()):
        rows.append([f"  occupancy {name}", f"{mark} / {simulation.buffers[name].capacity}"])
    print_table("Fig. 11: PAL decoder execution on synthetic RF", ["quantity", "value"], rows)

    assert trace.deadline_miss_count() == 0
    for name, mark in trace.buffer_high_water.items():
        assert mark <= simulation.buffers[name].capacity
