"""E2 / Fig. 3 -- Refinement of a modal module between a periodic source and
sink into a CTA model.

A module with two while-loops (unknown iteration counts p and q) sits between
a 1 kHz source and a 1 kHz sink.  The derived CTA model gives every loop
component access to both streams and enforces strict periodicity with the
transition-takes-one-period worst case, so the analysis guarantees the source
and sink deadlines regardless of which loop is active and when transitions
happen.  The benchmark derives the model, checks consistency, sizes the
buffers and verifies the result by simulating adversarial mode schedules.
"""

from fractions import Fraction

from _reporting import print_table

from repro.apps.modal_audio import compile_two_mode, simulate_two_mode


def test_fig3_two_mode_analysis(benchmark):
    result = benchmark(compile_two_mode)
    consistency = result.check_consistency(assume_infinite_unsized=True)
    module = result.model.child("main").child("TwoMode")
    rows = [
        ["CTA components", sum(1 for _ in result.model.walk())],
        ["loop components in TwoMode", sum(1 for c in module.children.values() if c.kind == "while-loop")],
        ["consistent", consistency.consistent],
        ["source rate (adc)", f"{float(consistency.port_rates[result.source_ports['adc']]):g} Hz"],
        ["sink rate (dac)", f"{float(consistency.port_rates[result.sink_ports['dac']]):g} Hz"],
    ]
    print_table("Fig. 3: refinement of a two-mode module", ["quantity", "value"], rows)
    assert consistency.consistent


def test_fig3_periodicity_holds_for_any_mode_sequence(benchmark):
    result = compile_two_mode()
    sizing = result.size_buffers()

    def run_all():
        outcomes = []
        for schedule in [(("loop0", 1), ("loop1", 1)), (("loop0", 5), ("loop1", 2)), (("loop0", 2), ("loop1", 9))]:
            _, trace = simulate_two_mode(
                Fraction(1, 25), mode_schedule=schedule, result=result, sizing=sizing
            )
            outcomes.append((schedule, trace.deadline_miss_count(), float(trace.measured_rate("dac") or 0)))
        return outcomes

    outcomes = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "Fig. 3: source/sink deadlines under adversarial mode schedules",
        ["mode schedule (loop, iterations)", "deadline misses", "measured dac rate [Hz]"],
        [[str(s), misses, rate] for s, misses, rate in outcomes],
    )
    assert all(misses == 0 for _, misses, _ in outcomes)
