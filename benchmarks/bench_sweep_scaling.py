"""Sweep executor scaling: serial vs GIL-bound threads vs processes.

The paper's headline result (Fig. 4) is speedup-vs-processors, and the
``Sweep`` subsystem is the tool that reproduces it -- so the sweep itself
must scale with real cores.  This benchmark records points/sec on the
PAL-decoder grid (the Fig. 4 scenario: ``BoundedProcessors(n)`` across a
processor-count axis) for the three backends at 1/2/4 workers:

* ``serial`` -- one compilation, points executed in-loop (the baseline),
* ``thread`` -- the PR-2 backend: deterministic, but the simulation is pure
  Python, so the GIL serialises the actual work and extra threads buy ~0x,
* ``process`` -- the spec-shipping backend: each worker rebuilds and
  compiles the program once from its picklable ``ProgramSpec``, then
  executes its chunk of points on a real core.

Every backend must produce the identical report (aggregation is by point
index); the benchmark asserts it outright, so the scaling numbers can never
come from silently divergent work.

BENCH_SMOKE=1 (the gating CI job) shrinks the grid and enforces a relaxed
floor -- process workers at 4 must beat serial by >= 1.3x points/sec -- far
below the locally measured multi-core ratios, so only a genuine scaling
regression fails the job, not shared-runner jitter.  The floor is skipped on
machines without at least 4 CPUs (a single-core box cannot exhibit
multi-core scaling, relaxed or not).
"""

from __future__ import annotations

import os
import time
from fractions import Fraction

from _reporting import print_table

from repro.api import Sweep
from repro.engine import BoundedProcessors

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")

#: simulated seconds per grid point (CPU-bound pure-Python simulation);
#: BENCH_SMOKE halves the per-point work
DURATION = Fraction(1, 4) if SMOKE else Fraction(1, 2)
#: processor-count axis: one grid point per BoundedProcessors(n);
#: BENCH_SMOKE also shrinks the grid itself
PROCESSOR_COUNTS = tuple(range(1, 9)) if SMOKE else tuple(range(1, 13))

#: Acceptance floor: 4 process workers must beat serial by this factor.
#: Measured multi-core ratios sit well above both values; the smoke floor
#: is relaxed so shared-runner jitter cannot redden the gating CI job,
#: and either floor only guards against the process backend silently
#: degenerating to serial cost.
REQUIRED_PROCESS_SPEEDUP = 1.3 if SMOKE else 1.5


def _pal_grid() -> Sweep:
    return Sweep("pal_decoder", duration=DURATION).add_axis(
        "scheduler", [BoundedProcessors(n) for n in PROCESSOR_COUNTS]
    )


def _points_per_second(executor: str, workers: int):
    """(points/sec, report) for one backend configuration, cold-compiled.

    A fresh Sweep per run so every configuration pays its own compilation --
    the comparison is end-to-end wall clock, exactly what a user of
    ``Sweep.run`` experiences.
    """
    sweep = _pal_grid()
    started = time.perf_counter()
    report = sweep.run(executor=executor, workers=workers, keep_runs=False)
    elapsed = time.perf_counter() - started
    assert report.ok, [failure.error for failure in report.failures]
    assert not report.warnings, report.warnings
    return len(report.results) / elapsed, report


def test_sweep_executor_scaling():
    configurations = [
        ("serial", 1),
        ("thread", 2),
        ("thread", 4),
        ("process", 2),
        ("process", 4),
    ]
    rates = {}
    reports = {}
    for executor, workers in configurations:
        rates[(executor, workers)], reports[(executor, workers)] = _points_per_second(
            executor, workers
        )

    serial_rate = rates[("serial", 1)]
    serial_rows = reports[("serial", 1)].rows()
    rows = []
    for executor, workers in configurations:
        rate = rates[(executor, workers)]
        rows.append((executor, workers, f"{rate:.2f}", f"{rate / serial_rate:.2f}x"))
        # The determinism contract behind every number above: all backends
        # aggregate by point index into the identical report.
        assert reports[(executor, workers)].rows() == serial_rows, (
            f"{executor} x{workers} diverged from the serial report"
        )
    print_table(
        f"sweep scaling, PAL-decoder grid ({len(PROCESSOR_COUNTS)} points, "
        f"duration {DURATION}, cpus={os.cpu_count()})",
        ("executor", "workers", "points/sec", "vs serial"),
        rows,
    )

    cpus = os.cpu_count() or 1
    process_speedup = rates[("process", 4)] / serial_rate
    if cpus >= 4:
        assert process_speedup >= REQUIRED_PROCESS_SPEEDUP, (
            f"process executor at 4 workers reached only "
            f"{process_speedup:.2f}x serial points/sec "
            f"(floor {REQUIRED_PROCESS_SPEEDUP}x on {cpus} cpus)"
        )
    else:
        print(
            f"(floor check skipped: {cpus} cpu(s) cannot exhibit "
            f"multi-core scaling)"
        )


if __name__ == "__main__":
    test_sweep_executor_scaling()
