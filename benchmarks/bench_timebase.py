"""Integer-tick vs exact-fraction event-queue time base.

After the engine refactor (cached floors + ready-set dispatch) the per-firing
constant was dominated by ``Fraction`` comparisons inside the event-queue
heap.  The integer-tick time base removes them: the queue orders plain
``(int, int)`` pairs and converts back to exact rationals only at the public
surfaces.  This benchmark records what that is worth on the same
dispatch-bound 200-task ring as ``bench_engine_dispatch.py``, plus one
app-level row (the quickstart pipeline through ``repro.api``) where firing
bodies and buffer bookkeeping dilute the queue's share of the work.

Both modes execute the identical event sequence -- the equivalence tests
(tests/test_timebase.py) assert bit-identical traces -- so the ratio below is
pure time-representation cost.
"""

from __future__ import annotations

import os
import time
from fractions import Fraction

from _reporting import print_table

from repro.api import Program
from repro.engine import ring_program, run_tasks
from repro.runtime.trace import TraceRecorder

#: BENCH_SMOKE=1 shrinks the workload and relaxes the floor so CI can run
#: the benchmark as a fast regression tripwire on noisy shared runners.
SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")

TASK_COUNT = 200
TOKENS = 8
STAGGER = 7
FIRINGS = 1000 if SMOKE else 4000
REPEATS = 1 if SMOKE else 3
APP_DURATION = Fraction(1, 10) if SMOKE else Fraction(1, 2)

#: Acceptance floor: tick mode must beat fraction mode by at least this
#: factor on the dispatch-bound ring (the measured gain is well above it;
#: the floor only guards against the tick path silently regressing to --
#: or below -- fraction cost).
REQUIRED_TICK_SPEEDUP = 1.1 if SMOKE else 1.3


def _ring_events_per_second(time_base: str) -> float:
    """Best-of-N completed firings per wall-clock second on the ring."""
    best = 0.0
    for _ in range(REPEATS):
        tasks = ring_program(TASK_COUNT, tokens=TOKENS, stagger=STAGGER)
        started = time.perf_counter()
        run = run_tasks(
            tasks,
            stop_after_firings=FIRINGS,
            trace=TraceRecorder(level="off"),
            time_base=time_base,
        )
        elapsed = time.perf_counter() - started
        assert run.engine.completed_firings >= FIRINGS
        best = max(best, run.engine.completed_firings / elapsed)
    return best


def _app_events_per_second(time_base: str) -> float:
    """Completed firings per wall-clock second of the quickstart pipeline."""
    best = 0.0
    for _ in range(REPEATS):
        analysis = Program.from_app("quickstart").analyze()
        started = time.perf_counter()
        run = analysis.run(APP_DURATION, trace="off", time_base=time_base)
        elapsed = time.perf_counter() - started
        assert run.time_base == time_base
        best = max(best, run.completed_firings / elapsed)
    return best


def test_timebase_throughput():
    ring_fraction = _ring_events_per_second("fraction")
    ring_ticks = _ring_events_per_second("ticks")
    app_fraction = _app_events_per_second("fraction")
    app_ticks = _app_events_per_second("ticks")

    rows = [
        ["200-task ring, fraction queue", f"{ring_fraction:,.0f}", "1.0x"],
        ["200-task ring, tick queue", f"{ring_ticks:,.0f}", f"{ring_ticks / ring_fraction:.2f}x"],
        ["quickstart app, fraction queue", f"{app_fraction:,.0f}", "1.0x"],
        ["quickstart app, tick queue", f"{app_ticks:,.0f}", f"{app_ticks / app_fraction:.2f}x"],
    ]
    print_table(
        f"Event-queue time base ({FIRINGS} ring firings, tracing off)",
        ["configuration", "events/s", "speedup"],
        rows,
    )

    assert ring_ticks / ring_fraction >= REQUIRED_TICK_SPEEDUP, (
        f"tick time base delivered only {ring_ticks / ring_fraction:.2f}x over the "
        f"fraction queue on the dispatch-bound ring (required {REQUIRED_TICK_SPEEDUP}x)"
    )
